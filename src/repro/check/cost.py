"""Static LogGP cost analysis of compiled communication plans.

Given a kernel's communication plan and a :class:`~repro.runtime.model.
MachineModel`, this module *symbolically* computes — via integer-set
algebra, in closed form in the rank count where the counts are affine —

- per-statement and per-kernel **message counts** and **communicated
  bytes** (per rank and total),
- the **replicated-work fraction** (iterations every rank redundantly
  re-executes),
- the **wavefront serialization depth** (pipelined message rounds that
  cannot overlap),
- the per-rank **load balance** of the block ownership,

and folds them through the LogGP parameters into a predicted time
``T(nprocs)`` and speedup curve.

The communication counts are a *proof*, not a heuristic: for hoisted
events they are derived purely from iset intersections of per-rank need
sets with per-rank ownership sets — an independent computation from the
point-enumeration path that builds the executable routing tables
(:meth:`~repro.codegen.spmd.CompiledKernel._build_routes`).  The
validation mode (:func:`validate_against_trace`) replays a fault-free
virtual-machine trace and asserts the static per-rank message/byte
counters match the observed counters **exactly**; a mismatch is an
analyzer or compiler bug, and the tier-1 suite pins this for every
affine paper kernel and the NAS class-S pipelines.

Advisory diagnostics (:func:`cost_advisories`) surface the findings with
stable codes merged into :func:`repro.check.verify_kernel` reports:
``W-REPLICATED`` (fallback nests), ``W-SCALAR-WAVEFRONT`` (vector-backend
demotions), ``W-IMBALANCE`` (uneven block ownership), and — when a
machine model is supplied — ``W-COMM-HOT`` (a dominant communication
statement) and ``I-SCALE-LIMIT`` (a predicted speedup knee).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..comm.analyzer import CommPlan
from ..cp.model import cp_iteration_set
from ..cp.nest import NestInfo
from ..distrib.layout import PDIM, DistributionContext
from ..ir.expr import BinOp, FuncCall, UnOp
from ..ir.stmt import Assign, DoLoop
from ..ir.visit import walk_stmts
from ..runtime.model import MachineModel
from .diagnostics import (
    I_SCALE_LIMIT,
    W_COMM_HOT,
    W_IMBALANCE,
    W_REPLICATED,
    W_SCALAR_WAVEFRONT,
    Diagnostic,
    Severity,
)

#: advisory thresholds (module-level so tests can pin them)
IMBALANCE_TOL = 1.25        # max/mean partitioned iterations per rank
COMM_HOT_SHARE = 0.5        # one statement's share of predicted comm time
COMM_HOT_MIN_FRACTION = 0.2  # comm share of total predicted time
KNEE_GAIN = 0.02            # marginal speedup below this is "flat"

#: the paper's headline range: SP/BT on up to 25 processors
CURVE_PROCS: tuple[int, ...] = tuple(range(2, 26))


# ---------------------------------------------------------------------------
# cost records
# ---------------------------------------------------------------------------

@dataclass
class EventCost:
    """Statically derived cost of one communication event."""

    nest: int
    array: str
    kind: str  # 'read' | 'writeback'
    stmt_sid: Optional[int]
    level: int  # placement level (0 = hoisted)
    messages: int
    bytes: int
    elems: int
    pipelined: bool = False
    #: hoisted events are exact (trace-validated); pipelined counts are
    #: per-representative-rank lower bounds
    exact: bool = True


@dataclass
class NestCost:
    """Aggregated communication cost of one loop nest."""

    nest: int
    messages: int = 0
    bytes: int = 0
    elems: int = 0
    replicated: bool = False
    events: list[EventCost] = field(default_factory=list)


@dataclass
class RankCost:
    """Per-rank communication and work accounting."""

    rank: int
    sent_messages: int = 0
    sent_bytes: int = 0
    recv_messages: int = 0
    recv_bytes: int = 0
    #: partitioned iterations this rank executes (load-balance input)
    iterations: int = 0
    #: modeled floating-point operations (partitioned + replicated)
    flops: int = 0


@dataclass
class KernelCost:
    """The static cost analyzer's result for one compiled kernel."""

    subject: str
    nprocs: int
    grid_shape: tuple[int, ...]
    word_bytes: int
    nests: list[NestCost] = field(default_factory=list)
    ranks: list[RankCost] = field(default_factory=list)
    serial_iterations: int = 0
    replicated_iterations: int = 0
    serial_flops: int = 0
    wavefront_depth: int = 0
    #: True when every live event is hoisted and exactly countable, so the
    #: totals below must match a fault-free VM trace bit-for-bit
    exact: bool = True

    # -- totals ------------------------------------------------------------
    @property
    def messages(self) -> int:
        return sum(n.messages for n in self.nests)

    @property
    def bytes(self) -> int:
        return sum(n.bytes for n in self.nests)

    @property
    def elems(self) -> int:
        return sum(n.elems for n in self.nests)

    # -- derived metrics ---------------------------------------------------
    def replicated_fraction(self) -> float:
        """Fraction of serial iterations every rank redundantly re-runs."""
        if self.serial_iterations <= 0:
            return 0.0
        return self.replicated_iterations / self.serial_iterations

    def imbalance(self) -> float:
        """max/mean of per-rank partitioned iteration counts (1.0 is a
        perfect balance; undefined workloads report 1.0)."""
        counts = [r.iterations for r in self.ranks]
        total = sum(counts)
        if total <= 0:
            return 1.0
        return max(counts) / (total / len(counts))

    # -- LogGP folding -----------------------------------------------------
    def comm_time(self, model: MachineModel, rank: Optional[int] = None) -> float:
        """Predicted communication time: per-rank busy cost of its sends
        (half latency + overhead each, payload streaming, injection gap)
        plus the receive-side half latencies.  ``rank=None`` takes the
        maximum over ranks — the critical path of a bulk-synchronous
        phase."""
        if rank is None:
            if not self.ranks:
                return 0.0
            return max(self.comm_time(model, r.rank) for r in self.ranks)
        r = self.ranks[rank]
        half = model.alpha / 2 + model.o
        busy = (
            (r.sent_messages + r.recv_messages) * half
            + r.sent_bytes * model.beta
            + max(0, r.sent_messages - 1) * model.g
        )
        return busy

    def compute_time(self, model: MachineModel) -> float:
        if not self.ranks:
            return self.serial_flops * model.flop_time
        return max(r.flops for r in self.ranks) * model.flop_time

    def predicted_time(self, model: MachineModel) -> float:
        """T(nprocs): slowest rank's compute + the comm critical path +
        the serialized wavefront rounds (each a full message latency)."""
        serialization = self.wavefront_depth * (model.alpha + 2 * model.o)
        return self.compute_time(model) + self.comm_time(model) + serialization

    def serial_time(self, model: MachineModel) -> float:
        return self.serial_flops * model.flop_time

    def predicted_speedup(self, model: MachineModel) -> float:
        t = self.predicted_time(model)
        if t <= 0:
            return float(self.nprocs)
        return self.serial_time(model) / t

    def as_dict(self) -> dict:
        return {
            "subject": self.subject,
            "nprocs": self.nprocs,
            "grid": list(self.grid_shape),
            "messages": self.messages,
            "bytes": self.bytes,
            "elems": self.elems,
            "exact": self.exact,
            "replicated_fraction": self.replicated_fraction(),
            "imbalance": self.imbalance(),
            "wavefront_depth": self.wavefront_depth,
            "per_rank": [
                {
                    "rank": r.rank,
                    "sent_messages": r.sent_messages,
                    "sent_bytes": r.sent_bytes,
                    "recv_messages": r.recv_messages,
                    "recv_bytes": r.recv_bytes,
                    "iterations": r.iterations,
                }
                for r in self.ranks
            ],
        }


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------

def _stmt_flops(stmt: Assign) -> int:
    """Modeled flops of one statement execution: the arithmetic operator
    count of its right-hand side (at least 1)."""
    n = sum(
        1 for e in stmt.rhs.walk() if isinstance(e, (BinOp, UnOp, FuncCall))
    )
    return max(n, 1)


def _pbind(grid, rank: int) -> dict[str, int]:
    return {PDIM(g): c for g, c in enumerate(grid.delinearize(rank))}


class _OwnershipTable:
    """Per-(array, rank) concrete ownership sets, cached per analysis."""

    def __init__(self, ctx: DistributionContext, params: Mapping[str, int], grid):
        self.ctx = ctx
        self.params = dict(params)
        self.grid = grid
        self._own: dict[tuple[str, int], object] = {}

    def owned(self, array: str, rank: int):
        key = (array, rank)
        if key not in self._own:
            layout = self.ctx.layout(array)
            self._own[key] = layout.ownership().bind(
                {**self.params, **_pbind(self.grid, rank)}
            )
        return self._own[key]


def _event_flows(ev, own: _OwnershipTable, params: Mapping[str, int], grid):
    """Exact per-pair flows ``{(src, dst): elems}`` of one hoisted event,
    from pure iset algebra: rank *r*'s need set intersected with every
    other rank's ownership set.  Independent of the route builder's
    point-enumeration + owner-arithmetic path, so agreement with the
    executed trace is a genuine cross-check."""
    flows: dict[tuple[int, int], int] = {}
    for r in range(grid.size):
        need = ev.data.bind({**params, **_pbind(grid, r)})
        if need.is_empty():
            continue
        for q in range(grid.size):
            if q == r:
                continue
            n = need.intersect(own.owned(ev.array, q)).cardinality()
            if n == 0:
                continue
            pair = (q, r) if ev.kind == "read" else (r, q)
            flows[pair] = flows.get(pair, 0) + n
    return flows


def _cost_from_parts(
    subject: str,
    ctx: DistributionContext,
    params: Mapping[str, int],
    cps: Mapping[int, object],
    nest_plans: Sequence[tuple[DoLoop, CommPlan]],
    nprocs: int,
    word_bytes: int = 8,
) -> KernelCost:
    grid = ctx.the_grid()
    cost = KernelCost(
        subject=subject,
        nprocs=nprocs,
        grid_shape=grid.shape,
        word_bytes=word_bytes,
        ranks=[RankCost(r) for r in range(nprocs)],
    )
    own = _OwnershipTable(ctx, params, grid)
    for nest_idx, (root, plan) in enumerate(nest_plans):
        nc = NestCost(nest_idx)
        nc.replicated = any(
            getattr(cps.get(s.sid), "is_fallback", False)
            for s in walk_stmts([root])
            if isinstance(s, Assign)
        )
        for ev in plan.live_events():
            if ev.placement.hoisted:
                flows = _event_flows(ev, own, params, grid)
                msgs = len(flows)
                elems = sum(flows.values())
                ec = EventCost(
                    nest=nest_idx,
                    array=ev.array,
                    kind=ev.kind,
                    stmt_sid=ev.stmt.sid if isinstance(ev.stmt, Assign) else None,
                    level=0,
                    messages=msgs,
                    bytes=elems * word_bytes,
                    elems=elems,
                )
                for (src, dst), n in flows.items():
                    cost.ranks[src].sent_messages += 1
                    cost.ranks[src].sent_bytes += n * word_bytes
                    cost.ranks[dst].recv_messages += 1
                    cost.ranks[dst].recv_bytes += n * word_bytes
            else:
                # Pipelined: per-representative-rank rounds x volume.  Not
                # executable by the code generator, so never trace-
                # validated; counts are per-rank lower bounds.
                rounds = ev.message_count(dict(params), plan._trip)
                elems = ev.volume(dict(params))
                ec = EventCost(
                    nest=nest_idx,
                    array=ev.array,
                    kind=ev.kind,
                    stmt_sid=ev.stmt.sid if isinstance(ev.stmt, Assign) else None,
                    level=ev.placement.level,
                    messages=rounds,
                    bytes=elems * word_bytes,
                    elems=elems,
                    pipelined=True,
                    exact=False,
                )
                cost.exact = False
                cost.wavefront_depth = max(cost.wavefront_depth, rounds)
            nc.events.append(ec)
            nc.messages += ec.messages
            nc.bytes += ec.bytes
            nc.elems += ec.elems
        cost.nests.append(nc)
        # -- work accounting ----------------------------------------------
        nest = NestInfo(root, dict(params))
        for stmt in walk_stmts([root]):
            if not isinstance(stmt, Assign):
                continue
            bounds = nest.bounds_of(stmt)
            if bounds is None:
                continue  # non-affine loop structure: no static count
            serial = bounds.bind(dict(params)).cardinality()
            w = _stmt_flops(stmt)
            cost.serial_iterations += serial
            cost.serial_flops += w * serial
            scp = cps.get(stmt.sid)
            if scp is None or scp.cp.is_replicated:
                cost.replicated_iterations += serial
                for r in cost.ranks:
                    r.flops += w * serial
                continue
            dims = nest.dims_of(stmt)
            iters = cp_iteration_set(scp.cp, dims, bounds.bind(dict(params)), ctx)
            for r in cost.ranks:
                n_r = iters.bind(
                    {**params, **_pbind(grid, r.rank)}
                ).cardinality()
                r.iterations += n_r
                r.flops += w * n_r
    return cost


def kernel_cost(kernel) -> KernelCost:
    """Static cost of a compiled kernel (exact for hoisted plans)."""
    return _cost_from_parts(
        kernel.sub.name,
        kernel.ctx,
        kernel.params,
        kernel.cps,
        kernel.nest_plans,
        kernel.nprocs,
    )


def wildcard_grid(sub):
    """Deep copy of *sub* with every PROCESSORS extent replaced by a
    wildcard, so :class:`DistributionContext` near-square-factors any
    target rank count — the P-sweep behind the predicted speedup curve."""
    out = copy.deepcopy(sub)
    for p in out.processors:
        p.shape = [None] * len(p.shape)
    return out


def analysis_cost(
    source_or_sub,
    nprocs: int,
    params: Mapping[str, int] | None = None,
    subject: Optional[str] = None,
    wildcard: bool = False,
) -> KernelCost:
    """Cost via the analysis half of the pipeline only (no code
    generation) — accepts the pipelined kernels ``compile_kernel``
    rejects, and powers the rank-count sweep."""
    from ..codegen.spmd import analyze_program
    from ..frontend import parse_source

    if isinstance(source_or_sub, str):
        prog = parse_source(source_or_sub)
        sub = next(iter(prog.units.values()))
    else:
        sub = source_or_sub
    if wildcard:
        sub = wildcard_grid(sub)
    params = dict(params or {})
    ctx = DistributionContext(sub, nprocs, params)
    merged = {**sub.symbols.parameter_values(), **params}
    cps, nest_plans, _priv, _loc = analyze_program(sub, ctx, merged)
    return _cost_from_parts(
        subject or sub.name, ctx, merged, cps, nest_plans, nprocs
    )


def sweep_cost(
    source_or_sub,
    params: Mapping[str, int] | None = None,
    procs: Sequence[int] = CURVE_PROCS,
    subject: Optional[str] = None,
) -> list[KernelCost]:
    """Re-analyze one kernel at every rank count in *procs* (processor
    grids wildcarded so any count factors)."""
    out = []
    for p in procs:
        out.append(
            analysis_cost(
                source_or_sub, p, params, subject=subject, wildcard=True
            )
        )
    return out


def closed_form(series: Sequence[tuple[int, int]]) -> Optional[str]:
    """Closed form of a count as a function of the rank count, when one
    exists: fits ``c(P) = a*P + b`` on two anchors and verifies the fit
    *exactly* on every evaluated point.  Returns a rendering like
    ``"4*P - 8"``, or None when the series is not affine in P (honest:
    no interpolation is ever reported as closed form)."""
    pts = [(int(p), int(v)) for p, v in series]
    if len(pts) < 2:
        return None
    (p0, v0), (p1, v1) = pts[0], pts[-1]
    if p1 == p0:
        return None
    num, den = v1 - v0, p1 - p0
    if num % den != 0:
        return None
    a = num // den
    b = v0 - a * p0
    if any(v != a * p + b for p, v in pts):
        return None
    if a == 0:
        return str(b)
    term = "P" if a == 1 else f"{a}*P"
    if b == 0:
        return term
    return f"{term} {'+' if b > 0 else '-'} {abs(b)}"


# ---------------------------------------------------------------------------
# predicted scaling curve
# ---------------------------------------------------------------------------

@dataclass
class CurvePoint:
    nprocs: int
    time: float
    speedup: float
    messages: int
    bytes: int


def predicted_curve(
    costs: Sequence[KernelCost], model: MachineModel
) -> list[CurvePoint]:
    """Fold a rank-count sweep through the LogGP parameters."""
    return [
        CurvePoint(
            nprocs=c.nprocs,
            time=c.predicted_time(model),
            speedup=c.predicted_speedup(model),
            messages=c.messages,
            bytes=c.bytes,
        )
        for c in costs
    ]


def scale_limit(curve: Sequence[CurvePoint]) -> Optional[CurvePoint]:
    """The predicted speedup knee: the point after which no later rank
    count improves on the best speedup so far by at least
    :data:`KNEE_GAIN`.  Tracking the running best (rather than adjacent
    pairs) keeps single awkward grid factorizations — a prime P forced
    into a 1xP grid, say — from masquerading as the knee.  Returns None
    when the sweep is still scaling at its last point."""
    if not curve:
        return None
    knee = curve[0]
    for pt in curve[1:]:
        if pt.speedup > knee.speedup * (1.0 + KNEE_GAIN):
            knee = pt
    if knee is curve[-1]:
        return None
    return knee


# ---------------------------------------------------------------------------
# advisories
# ---------------------------------------------------------------------------

def cost_advisories(
    cost: KernelCost,
    kernel=None,
    model: Optional[MachineModel] = None,
    curve: Optional[Sequence[CurvePoint]] = None,
) -> list[Diagnostic]:
    """Advisory diagnostics derived from a :class:`KernelCost`.

    Structural advisories (``W-REPLICATED``, ``W-SCALAR-WAVEFRONT``,
    ``W-IMBALANCE``) need only the cost record (plus the kernel for the
    vectorizer's loop reports); the model-dependent ones (``W-COMM-HOT``,
    ``I-SCALE-LIMIT``) fire only when a machine *model* (and, for the
    knee, a predicted *curve*) is supplied."""
    out: list[Diagnostic] = []
    for nc in cost.nests:
        if nc.replicated:
            out.append(Diagnostic(
                Severity.WARN, W_REPLICATED,
                f"nest runs replicated on all {cost.nprocs} ranks "
                f"({nc.messages} broadcast messages, {nc.bytes} bytes); "
                "no parallel speedup from this nest",
                nest=nc.nest,
            ))
    if kernel is not None:
        try:
            kernel.python_source("mpi")  # fills vector_report
        except Exception:
            pass
        for sid, rep in sorted(getattr(kernel, "vector_report", {}).items()):
            if getattr(rep, "status", "vector") == "vector":
                continue
            reason = getattr(rep, "reason", "") or "statement-level fallback"
            out.append(Diagnostic(
                Severity.WARN, W_SCALAR_WAVEFRONT,
                f"loop {getattr(rep, 'loop_var', '?')} demoted to scalar "
                f"execution by the vector backend: {reason}",
                stmt_sid=sid,
            ))
    imb = cost.imbalance()
    if imb > IMBALANCE_TOL:
        counts = [r.iterations for r in cost.ranks]
        out.append(Diagnostic(
            Severity.WARN, W_IMBALANCE,
            f"uneven block ownership: max/mean partitioned iterations = "
            f"{imb:.2f} (per-rank {counts}); the slowest rank bounds the "
            "parallel time",
        ))
    if model is not None:
        total_comm = cost.comm_time(model)
        total_time = cost.predicted_time(model)
        if total_comm > 0 and total_time > 0:
            by_stmt: dict[Optional[int], tuple[int, int, str]] = {}
            for nc in cost.nests:
                for ec in nc.events:
                    m, b, a = by_stmt.get(ec.stmt_sid, (0, 0, ec.array))
                    by_stmt[ec.stmt_sid] = (
                        m + ec.messages, b + ec.bytes, a
                    )
            times = {
                sid: model.loggp_time(m, b)
                for sid, (m, b, _a) in by_stmt.items()
            }
            kernel_comm = sum(times.values())
            if kernel_comm > 0:
                hot_sid = max(times, key=lambda s: times[s])
                share = times[hot_sid] / kernel_comm
                if (
                    share >= COMM_HOT_SHARE
                    and total_comm >= COMM_HOT_MIN_FRACTION * total_time
                ):
                    m, b, array = by_stmt[hot_sid]
                    out.append(Diagnostic(
                        Severity.WARN, W_COMM_HOT,
                        f"statement dominates predicted communication time "
                        f"({share:.0%} of it: {m} messages, {b} bytes for "
                        f"array {array!r}); communication is "
                        f"{total_comm / total_time:.0%} of the predicted "
                        "kernel time",
                        stmt_sid=hot_sid, array=array,
                    ))
        if curve:
            knee = scale_limit(curve)
            if knee is not None:
                out.append(Diagnostic(
                    Severity.INFO, I_SCALE_LIMIT,
                    f"predicted speedup flattens at ~{knee.nprocs} ranks "
                    f"(S={knee.speedup:.2f}); adding ranks beyond this "
                    f"gains <{KNEE_GAIN:.0%} per rank under the "
                    "communication model",
                ))
    return out


# ---------------------------------------------------------------------------
# trace validation
# ---------------------------------------------------------------------------

@dataclass
class CostValidation:
    """Exact-match comparison of static counts vs an observed trace."""

    subject: str
    nprocs: int
    predicted_messages: int
    measured_messages: int
    predicted_bytes: int
    measured_bytes: int
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def validate_against_trace(cost: KernelCost, trace) -> CostValidation:
    """Assert the static per-rank and total message/byte counts equal a
    fault-free VM trace's counters exactly.  Only meaningful for
    ``cost.exact`` analyses (hoisted plans); any difference is reported,
    none are tolerated."""
    result = CostValidation(
        subject=cost.subject,
        nprocs=cost.nprocs,
        predicted_messages=cost.messages,
        measured_messages=trace.total_messages(),
        predicted_bytes=cost.bytes,
        measured_bytes=trace.total_bytes(),
    )
    if not cost.exact:
        result.mismatches.append(
            "cost analysis is not exact (pipelined events); trace "
            "validation is undefined for this kernel"
        )
        return result
    if result.predicted_messages != result.measured_messages:
        result.mismatches.append(
            f"total messages: predicted {result.predicted_messages}, "
            f"measured {result.measured_messages}"
        )
    if result.predicted_bytes != result.measured_bytes:
        result.mismatches.append(
            f"total bytes: predicted {result.predicted_bytes}, "
            f"measured {result.measured_bytes}"
        )
    for r, stats in zip(cost.ranks, trace.comm_stats_all()):
        for attr in ("sent_messages", "sent_bytes", "recv_messages", "recv_bytes"):
            want = getattr(r, attr)
            got = getattr(stats, attr)
            if want != got:
                result.mismatches.append(
                    f"rank {r.rank} {attr.replace('_', ' ')}: "
                    f"predicted {want}, measured {got}"
                )
    return result


# ---------------------------------------------------------------------------
# plan-cache integration
# ---------------------------------------------------------------------------

def _cost_digest(kernel_digest: str, model: Optional[MachineModel]) -> str:
    import hashlib

    ident = "none" if model is None else (
        f"{model.name}|{model.flop_time!r}|{model.alpha!r}|{model.beta!r}|"
        f"{model.o!r}|{model.g!r}|{model.word_bytes}"
    )
    return hashlib.sha256(
        f"cost-v1|{kernel_digest}|{ident}".encode()
    ).hexdigest()


def cached_kernel_cost(
    source: str,
    nprocs: int,
    params: Mapping[str, int] | None = None,
    backend: str = "vector",
    strict: bool = True,
    model: Optional[MachineModel] = None,
):
    """Compile *source* (through the plan cache) and return
    ``(kernel, cost, cost_cached)``.  The cost record is stored in the
    active plan cache under a digest derived from the kernel digest and
    the machine-model identity, so warm hits replay the analysis — and
    therefore its advisories — without re-running the iset algebra."""
    import pickle

    from ..codegen import compile_kernel
    from ..compile.cache import active_cache
    from ..compile.key import PlanKey

    kernel = compile_kernel(
        source, nprocs=nprocs, params=dict(params or {}),
        backend=backend, strict=strict,
    )
    cache = active_cache()
    if cache is None:
        return kernel, kernel_cost(kernel), False
    key = PlanKey.for_source(
        source, nprocs, params=params, backend=backend, strict=strict
    )
    digest = _cost_digest(key.kernel_digest, model)
    payload = cache.get(digest)
    if payload is not None:
        try:
            cost = pickle.loads(payload)
            if isinstance(cost, KernelCost):
                return kernel, cost, True
        except Exception:
            pass  # corrupt payload: fall through and recompute
    cost = kernel_cost(kernel)
    cache.put(digest, pickle.dumps(cost, protocol=pickle.HIGHEST_PROTOCOL))
    return kernel, cost, False


__all__ = [
    "EventCost",
    "NestCost",
    "RankCost",
    "KernelCost",
    "CurvePoint",
    "CostValidation",
    "kernel_cost",
    "analysis_cost",
    "sweep_cost",
    "predicted_curve",
    "scale_limit",
    "closed_form",
    "cost_advisories",
    "validate_against_trace",
    "cached_kernel_cost",
    "wildcard_grid",
    "CURVE_PROCS",
    "IMBALANCE_TOL",
    "COMM_HOT_SHARE",
    "COMM_HOT_MIN_FRACTION",
    "KNEE_GAIN",
]
