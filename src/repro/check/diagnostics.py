"""Structured diagnostics of the static SPMD verifier.

Every finding carries the statement, array, processor pair and integer set
it talks about, so a report can be consumed programmatically (the mutation
harness pins exact codes) or pretty-printed for humans.  Severities:

- ``error`` — the compiled program provably (or concretely) drops data it
  needs: uncovered non-local read, cross-processor race without a carrying
  message, unmatched send/recv, halo outside the overlap region.
- ``warn`` — the verifier could not *prove* safety (inexact set algebra,
  e.g. existentially quantified ownership) but found no concrete violation.
- ``info`` — non-blocking analysis notes: unknown trip counts, clean nests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..isets import ISet


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so reports can filter by floor."""

    INFO = 0
    WARN = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


#: diagnostic codes, grouped by the analysis that emits them
E_COVERAGE = "E-COVERAGE"   # uncovered non-local read (comm coverage)
E_LOCAL = "E-LOCAL"         # excluded (NEW/LOCALIZE) read not produced locally
E_RACE = "E-RACE"           # cross-processor dependence without carrying comm
E_MATCH = "E-MATCH"         # send/recv multiset imbalance (static deadlock)
E_OVERLAP = "E-OVERLAP"     # received halo exceeds the overlap region
W_UNPROVEN = "W-UNPROVEN"   # symbolic proof failed; concrete check clean
I_TRIP = "I-TRIP"           # message counts are lower bounds (unknown trips)
I_CLEAN = "I-CLEAN"         # a nest proved communication-free / fully covered
I_FALLBACK = "I-FALLBACK"   # an analyzer took a conservative fallback

#: advisory codes of the static LogGP cost analyzer (repro.check.cost)
W_COMM_HOT = "W-COMM-HOT"            # one statement dominates predicted comm time
W_REPLICATED = "W-REPLICATED"        # a nest runs replicated (fallback CP)
W_SCALAR_WAVEFRONT = "W-SCALAR-WAVEFRONT"  # vector backend demoted a loop
W_IMBALANCE = "W-IMBALANCE"          # uneven per-rank block ownership
I_SCALE_LIMIT = "I-SCALE-LIMIT"      # predicted speedup knee in T(nprocs)


@dataclass
class Diagnostic:
    """One verifier finding."""

    severity: Severity
    code: str
    message: str
    stmt_sid: Optional[int] = None
    array: Optional[str] = None
    procs: Optional[tuple[int, int]] = None  # (src_rank, dst_rank)
    iset: Optional[ISet] = None
    nest: Optional[int] = None  # index of the loop nest in the program unit

    def format(self) -> str:
        loc = []
        if self.nest is not None:
            loc.append(f"nest {self.nest}")
        if self.stmt_sid is not None:
            loc.append(f"s{self.stmt_sid}")
        if self.array:
            loc.append(self.array)
        if self.procs is not None:
            loc.append(f"p{self.procs[0]}->p{self.procs[1]}")
        where = f" [{', '.join(loc)}]" if loc else ""
        out = f"{self.severity}: {self.code}{where}: {self.message}"
        if self.iset is not None:
            out += f"\n    set: {self.iset.pretty()}"
        return out

    def __repr__(self) -> str:
        return f"<Diag {self.severity} {self.code} s{self.stmt_sid} {self.array}>"


@dataclass
class CheckReport:
    """The verifier's result for one program unit (or one nest)."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARN]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors()

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            f"== static SPMD verification: {self.subject} "
            f"({len(self.errors())} errors, {len(self.warnings())} warnings, "
            f"{len(self.infos())} infos)"
        ]
        # Deterministic ordering: severity floor first (errors before
        # warnings before infos), then code, then location — so the cost
        # analyzer's W-/I- advisories interleave consistently with the
        # verifier's own codes regardless of emission order.
        def order(d: Diagnostic) -> tuple:
            return (
                -int(d.severity),
                d.code,
                d.nest if d.nest is not None else -1,
                d.stmt_sid if d.stmt_sid is not None else -1,
            )

        for d in sorted(self.diagnostics, key=order):
            if d.severity >= min_severity:
                lines.append("  " + d.format().replace("\n", "\n  "))
        return "\n".join(lines)


class VerificationError(Exception):
    """Raised by ``compile_kernel(..., verify=True)`` when the checker
    finds errors; carries the full report."""

    def __init__(self, report: CheckReport):
        self.report = report
        super().__init__(report.format(min_severity=Severity.ERROR))
