"""Send/recv matching over the emitted SPMD schedule (analysis 3).

The compiled kernel's routing tables are flattened into a static
per-rank operation list (the messages ``exec_comm`` will issue).  The
check requires, for every ``(src, dst, tag)`` key, that the send multiset
and the receive multiset balance — an unmatched receive is a static
deadlock on the blocking virtual machine, an unmatched send is silent
data loss, and an element-count mismatch corrupts the unpack loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .diagnostics import E_MATCH, Diagnostic, Severity


@dataclass(frozen=True)
class ScheduleOp:
    """One message endpoint in the static schedule."""

    rank: int
    op: str  # 'send' | 'recv'
    peer: int
    tag: int
    count: int  # elements
    nest: int
    array: str

    def __str__(self) -> str:
        arrow = "->" if self.op == "send" else "<-"
        return (f"rank {self.rank} {self.op} {arrow} {self.peer} "
                f"(tag {self.tag}, {self.count} elems, {self.array})")


@dataclass
class StaticSchedule:
    """All message endpoints of a compiled kernel, in emission order."""

    ops: list[ScheduleOp] = field(default_factory=list)

    @classmethod
    def from_kernel(cls, kernel) -> "StaticSchedule":
        ops: list[ScheduleOp] = []
        for nest_idx, routes in enumerate(kernel._routes):
            for route in routes:
                for (src, dst), elems in sorted(route.pairs.items()):
                    ops.append(ScheduleOp(src, "send", dst, route.tag,
                                          len(elems), nest_idx, route.array))
                    ops.append(ScheduleOp(dst, "recv", src, route.tag,
                                          len(elems), nest_idx, route.array))
        return cls(ops)

    def sends(self) -> list[ScheduleOp]:
        return [o for o in self.ops if o.op == "send"]

    def recvs(self) -> list[ScheduleOp]:
        return [o for o in self.ops if o.op == "recv"]

    def without(self, op: ScheduleOp) -> "StaticSchedule":
        """A copy with one endpoint removed (mutation harness)."""
        out = list(self.ops)
        out.remove(op)
        return StaticSchedule(out)


def check_matching(schedule: StaticSchedule) -> list[Diagnostic]:
    """Balance sends against receives per (src, dst, tag) — unmatched
    receives deadlock, unmatched sends lose data, self-messages indicate
    a broken ownership test (``E-MATCH``)."""
    diags: list[Diagnostic] = []
    sends: dict[tuple[int, int, int], list[ScheduleOp]] = {}
    recvs: dict[tuple[int, int, int], list[ScheduleOp]] = {}
    for o in schedule.ops:
        if o.rank == o.peer:
            diags.append(Diagnostic(
                Severity.ERROR, E_MATCH,
                f"self-message in the schedule: {o} — owned data must not "
                "be routed through the transport",
                array=o.array, procs=(o.rank, o.peer), nest=o.nest,
            ))
            continue
        key = (o.rank, o.peer, o.tag) if o.op == "send" else (o.peer, o.rank, o.tag)
        (sends if o.op == "send" else recvs).setdefault(key, []).append(o)

    for key in sorted(set(sends) | set(recvs)):
        src, dst, tag = key
        s, r = sends.get(key, []), recvs.get(key, [])
        if len(s) != len(r):
            if len(s) < len(r):
                msg = (f"rank {dst} posts {len(r)} receive(s) from rank {src} "
                       f"(tag {tag}) but only {len(s)} send(s) exist — the "
                       "blocking receive deadlocks")
            else:
                msg = (f"rank {src} posts {len(s)} send(s) to rank {dst} "
                       f"(tag {tag}) but only {len(r)} receive(s) exist — "
                       "data is silently dropped")
            diags.append(Diagnostic(
                Severity.ERROR, E_MATCH, msg,
                array=(s or r)[0].array, procs=(src, dst),
                nest=(s or r)[0].nest,
            ))
            continue
        ns, nr = sum(o.count for o in s), sum(o.count for o in r)
        if ns != nr:
            diags.append(Diagnostic(
                Severity.ERROR, E_MATCH,
                f"element-count mismatch on ({src} -> {dst}, tag {tag}): "
                f"{ns} sent vs {nr} expected — the unpack loop misassigns",
                array=s[0].array, procs=(src, dst), nest=s[0].nest,
            ))
    return diags
