"""Named verification targets for ``python -m repro.eval check``.

Covers the paper kernels (Figures 4.1–6.1, compiled where the code
generator supports them, analysis-level otherwise), the NAS SP/BT
class-S pipelines, and the runnable examples in ``examples/``.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Callable, Optional

from .diagnostics import CheckReport
from .verifier import verify_kernel, verify_source

#: class S is the 12^3 NAS problem size
CLASS_S = 12


def _compiled(source, nprocs: int, params: dict, subject: str) -> CheckReport:
    from ..codegen import compile_kernel

    report = verify_kernel(compile_kernel(source, nprocs, params))
    report.subject = subject
    return report


def _analyzed(source, nprocs: int, params: dict, subject: str) -> CheckReport:
    return verify_source(source, nprocs, params, subject=subject)


#: a deliberately unanalyzable kernel: the second nest scatters through a
#: non-affine subscript, so lenient compilation degrades it to replicated
#: execution and the check report carries the I-FALLBACK record.
DEGRADED_EXAMPLE = """
      program degrade
      parameter (n = 16)
      real a(n), b(n)
!hpf$ processors p(4)
!hpf$ distribute a(block) onto p
!hpf$ distribute b(block) onto p
      do i = 1, n
         a(i) = i * 1.0
      enddo
      do i = 1, n
         b(mod(3*i, n) + 1) = a(i)
      enddo
      end
"""


def _degraded(nprocs: int, subject: str) -> CheckReport:
    """Lenient compilation of :data:`DEGRADED_EXAMPLE`; the verifier merges
    the kernel's degradation diagnostics into the report."""
    from ..codegen import compile_kernel

    report = verify_kernel(compile_kernel(DEGRADED_EXAMPLE, nprocs, strict=False))
    report.subject = subject
    return report


def _fig61(params: dict, subject: str) -> CheckReport:
    """Figure 6.1 (x_solve_cell): inline the leaf routines, then compile."""
    from ..codegen import compile_kernel
    from ..frontend import parse_source
    from ..nas import kernels
    from ..transform import inline_calls

    prog = parse_source(kernels.BT_SOLVE_CELL)
    for leaf in ("matvec_sub", "matmul_sub", "binvcrhs"):
        inline_calls(prog, "x_solve_cell", leaf)
    report = verify_kernel(compile_kernel(prog.get("x_solve_cell"), 4, params))
    report.subject = subject
    return report


def _examples_dir() -> Optional[Path]:
    root = Path(__file__).resolve().parents[3] / "examples"
    return root if root.is_dir() else None


def _example_source(module_file: str) -> Optional[str]:
    """SOURCE string of one example module (loaded without running main)."""
    root = _examples_dir()
    if root is None:
        return None
    path = root / module_file
    if not path.is_file():
        return None
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)  # examples guard main() behind __main__
    return getattr(mod, "SOURCE", None)


def _example(module_file: str, nprocs: int, params: dict, subject: str) -> CheckReport:
    src = _example_source(module_file)
    if src is None:
        report = CheckReport(subject)
        return report  # examples not shipped: vacuously clean
    return _compiled(src, nprocs, params, subject)


def available_targets() -> dict[str, Callable[[], CheckReport]]:
    """Named verification targets for ``python -m repro.eval check``:
    the paper kernels, NAS SP/BT class S, and the examples/ sources."""
    from ..nas import kernels

    targets: dict[str, Callable[[], CheckReport]] = {
        "fig4.1": lambda: _compiled(kernels.LHSY_SP, 4, {"n": 17}, "fig4.1 lhsy"),
        "fig4.2": lambda: _compiled(
            kernels.COMPUTE_RHS_BT, 8, {"n": 13}, "fig4.2 compute_rhs"),
        "fig5.1": lambda: _analyzed(
            kernels.Y_SOLVE_SP, 4, {"n": 17, "m": 0}, "fig5.1 y_solve"),
        "fig5.1-variant": lambda: _analyzed(
            kernels.Y_SOLVE_SP_VARIANT, 4, {"n": 17, "m": 0},
            "fig5.1 y_solve (variant)"),
        "fig6.1": lambda: _fig61({"n": 13}, "fig6.1 x_solve_cell (inlined)"),
        "exact-rhs": lambda: _compiled(
            kernels.EXACT_RHS_SP, 4, {"n": 17}, "exact_rhs"),
        "sp-class-s": lambda: _analyzed(
            kernels.Y_SOLVE_SP, 4, {"n": CLASS_S, "m": 0},
            "NAS SP y_solve, class S"),
        "bt-class-s": lambda: _compiled(
            kernels.COMPUTE_RHS_BT, 8, {"n": CLASS_S},
            "NAS BT compute_rhs, class S"),
        "degraded-example": lambda: _degraded(
            4, "graceful-degradation example (lenient)"),
    }
    if _examples_dir() is not None:
        targets.update({
            "example-quickstart": lambda: _example(
                "quickstart.py", 4, {"n": 16}, "examples/quickstart"),
            "example-heat3d": lambda: _example(
                "heat3d_application.py", 4, {"n": 12}, "examples/heat3d"),
            "example-multipartition": lambda: _example(
                "multipartition_hpf.py", 4, {"n": 12},
                "examples/multipartition"),
        })
    return targets
