"""Expression/statement → Python source emission for generated node code.

This is the *scalar* emission layer: one Python expression per Fortran
expression, loop indices as plain ints.  The vectorizing backend
(`repro.codegen.vectorize`) reuses :func:`emit_expr` verbatim for every
subexpression that is invariant in the vectorized loops — subscript
remainders, loop bounds, guard-segment context — so the two backends
share one rendering of scalar arithmetic (same intrinsic helpers, same
numpy scalar ufuncs via ``K``), which the bitwise-identity contract
between them depends on."""

from __future__ import annotations

from ..ir.expr import ArrayRef, BinOp, Expr, FuncCall, Num, StrLit, UnOp, Var

_PYFUNC = {
    "sqrt": "K.m.sqrt", "dsqrt": "K.m.sqrt",
    "abs": "abs", "dabs": "abs",
    "exp": "K.m.exp", "dexp": "K.m.exp",
    "log": "K.m.log", "dlog": "K.m.log",
    "sin": "K.m.sin", "cos": "K.m.cos", "tan": "K.m.tan", "atan": "K.m.atan",
    "min": "min", "dmin1": "min",
    "max": "max", "dmax1": "max",
    "mod": "K.fmod", "int": "int", "nint": "K.nint",
    "dble": "float", "real": "float", "float": "float",
    "sign": "K.fsign",
}

_BINOP = {
    "+": "+", "-": "-", "*": "*", "/": "/", "**": "**",
    "==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    ".and.": "and", ".or.": "or",
}


def emit_expr(e: Expr, locals_: set[str]) -> str:
    """Python source for an expression.

    Loop variables (``locals_``) become plain Python names; other scalars
    read from the ``S`` dict; arrays from the ``A`` dict.
    """
    if isinstance(e, Num):
        return repr(e.value)
    if isinstance(e, StrLit):
        return repr(e.value)
    if isinstance(e, Var):
        n = e.name.lower()
        return n if n in locals_ else f"S[{n!r}]"
    if isinstance(e, UnOp):
        if e.op == "-":
            return f"(-{emit_expr(e.operand, locals_)})"
        return f"(not {emit_expr(e.operand, locals_)})"
    if isinstance(e, BinOp):
        op = _BINOP.get(e.op)
        if op is None:
            raise ValueError(f"cannot emit operator {e.op!r}")
        if e.op == "/":
            return f"K.fdiv({emit_expr(e.left, locals_)}, {emit_expr(e.right, locals_)})"
        return f"({emit_expr(e.left, locals_)} {op} {emit_expr(e.right, locals_)})"
    if isinstance(e, ArrayRef):
        subs = ", ".join(emit_expr(s, locals_) for s in e.subscripts)
        return f"A[{e.name.lower()!r}].get(({subs},))"
    if isinstance(e, FuncCall):
        fn = _PYFUNC.get(e.name.lower())
        if fn is None:
            raise ValueError(f"cannot emit call to {e.name!r}")
        args = ", ".join(emit_expr(a, locals_) for a in e.args)
        return f"{fn}({args})"
    raise ValueError(f"cannot emit {type(e).__name__}")


def emit_assign_target(lhs, rhs_src: str, locals_: set[str]) -> str:
    """Python source for an assignment to an array element or scalar."""
    if isinstance(lhs, ArrayRef):
        subs = ", ".join(emit_expr(s, locals_) for s in lhs.subscripts)
        return f"A[{lhs.name.lower()!r}].set(({subs},), {rhs_src})"
    return f"S[{lhs.name.lower()!r}] = {rhs_src}"
