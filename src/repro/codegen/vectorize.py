"""Vectorizing backend: NumPy slice emission for affine loop nests.

The scalar backend emits one Python statement per loop iteration per
assignment.  This pass proves, per innermost affine loop — or per
perfectly-nested rectangular chain of loops — that executing each
assignment over its whole admissible index block at once is
observationally identical to the scalar interleaving, then emits NumPy
slice assignments over :meth:`FortranArray.vget`/``vset`` instead.

Safety argument (see DESIGN.md "Vectorizing backend"):

* **Loop distribution.**  Emitting the body statements as separate
  full-range sweeps in textual order is legal iff no carried dependence
  (at any vectorized level) runs from a textually-later statement to an
  earlier one.  Forward carried dependences and all loop-independent
  dependences are preserved by construction (a statement's sweep completes
  before the next statement starts).
* **Same-statement carried dependences** are allowed when the statement is
  emitted as a scalar mini-loop (original iteration order preserved), or —
  for *anti* dependences carried by the innermost vectorized level only —
  when emitted vectorized: the guard cover executes boxes in lexicographic
  iteration order, and NumPy materializes the full right-hand side of each
  box before any element is stored.  An anti dependence carried by an
  *outer* vectorized level can cross cover boxes against iteration order
  (guard holes split rows into blocks), so it forces a shallower nest.
* **Scalar expansion.**  A scalar written once per iteration and only read
  afterwards becomes a block-shaped vector temporary.  Under computation-
  partition guards this is bitwise-safe only when every reader's guard is
  subsumed by the writer's (checked via ON_HOME-term subsumption), so no
  reader ever observes a stale value that the scalar backend would have
  kept from an earlier admitted iteration.
* **Guard covers.**  Per-statement CP guards are realized as maximal
  contiguous runs of admissible innermost indices (:meth:`Guards.segments`)
  or, for multi-level blocks, as an exact lexicographically-ordered box
  cover (:meth:`Guards.boxes`), so each guarded statement is a short loop
  over slices, not over points.
* **Statement merging.**  Consecutive vectorized statements whose guards
  have the same canonical data partition (§5 ``cp_key``) and with no
  carried dependence between them share one cover loop: per box they
  execute in textual order, which preserves their loop-independent
  dependences, and carried dependences between group members are excluded
  outright.
* **Orientation.**  Fortran's column-major subscript order means the
  innermost loop index usually indexes the *first* array axis.  Each nest
  adopts the axis order of its first store as the block orientation; every
  other reference must use a subsequence of that order (NumPy keeps slice
  axes in array order), and lower-dimensional sections are broadcast-
  lifted with unit axes at the orientation positions they do not vary
  with.

Everything unprovable falls back level-by-level (an N-deep block plan
that fails is retried one loop deeper in), then statement-by-statement
(scalar mini-loops inside the vectorized innermost loop), then loop-wise
to the scalar backend; the decision log is kept on the kernel as
``vector_report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from ..analysis.dependence import DependenceAnalyzer
from ..cp.model import cp_key
from ..ir.expr import ArrayRef, BinOp, Expr, FuncCall, Num, UnOp, Var, from_affine, to_affine
from ..ir.stmt import Assign, Continue, DoLoop
from ..isets import LinExpr
from .pyemit import emit_expr

if TYPE_CHECKING:
    from .spmd import CompiledKernel


class VectorUnsupported(Exception):
    """A statement (or loop) cannot be proven safe to vectorize; the caller
    falls back to scalar emission.  The message is the fallback reason."""


#: intrinsics with an elementwise numpy equivalent that matches the scalar
#: backend's helper bit-for-bit (same ufunc / same formula)
_VECFUNC = {
    "sqrt": "K.np.sqrt", "dsqrt": "K.np.sqrt",
    "abs": "K.np.abs", "dabs": "K.np.abs",
    "exp": "K.np.exp", "dexp": "K.np.exp",
    "log": "K.np.log", "dlog": "K.np.log",
    "sin": "K.np.sin", "cos": "K.np.cos", "tan": "K.np.tan", "atan": "K.np.arctan",
    "mod": "K.vmod", "nint": "K.vnint", "int": "K.vint",
    "dble": "K.vdbl", "real": "K.vdbl", "float": "K.vdbl",
    "sign": "K.vsign",
}

_VEC_BINOP = {
    "+": "+", "-": "-", "*": "*", "**": "**",
    "==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}


@dataclass
class _Ctx:
    """Emission context for one vector block.

    ``lo``/``hi`` are Python source fragments for the inclusive innermost
    index range being emitted (a guard segment/box edge, or the whole loop
    range for expanded temporaries); ``base`` is the loop's lower bound,
    the origin of every expanded temporary.

    ``outer`` lists additionally-vectorized enclosing loop levels as
    ``(var, lo, hi, base)`` tuples, outermost first: expressions then
    evaluate over an N-d block, with partial-axes subexpressions broadcast-
    lifted per ``orient`` (the loop indices in array-axis order, adopted
    from the nest's first store)."""

    var: str
    locals_: set
    expanded: Mapping[str, str]
    written: frozenset
    lo: str
    hi: str
    base: str
    outer: tuple = ()
    orient: Optional[tuple] = None

    def vec_vars(self) -> tuple:
        """The vectorized loop indices, outermost first."""
        return tuple(o[0] for o in self.outer) + (self.var,)

    def range_of(self, v: str) -> tuple[str, str]:
        if v == self.var:
            return self.lo, self.hi
        for name, lo, hi, _base in self.outer:
            if name == v:
                return lo, hi
        raise KeyError(v)

    def base_of(self, v: str) -> str:
        if v == self.var:
            return self.base
        for name, _lo, _hi, base in self.outer:
            if name == v:
                return base
        raise KeyError(v)


@dataclass
class _StmtPlan:
    stmt: Assign
    vector: bool
    reason: str = ""
    #: ('array', name, subs_src) | ('expand', name, temp) — plus rhs_src
    payload: tuple | None = None
    rhs_src: str = ""


@dataclass
class LoopReport:
    """One loop's (or loop chain's) vectorization outcome (perf diagnostics)."""

    loop_var: str
    sid: int
    status: str  # 'vector' | 'scalar' | 'mixed'
    reason: str = ""
    vector_sids: tuple = ()
    scalar_sids: tuple = ()
    expanded: tuple = ()

    def __repr__(self) -> str:
        extra = f" ({self.reason})" if self.reason else ""
        return f"<do {self.loop_var}: {self.status}{extra}>"


@dataclass
class LoopPlan:
    fallback: Optional[str]
    stmts: list = field(default_factory=list)
    expanded: dict = field(default_factory=dict)
    report: LoopReport = None  # type: ignore[assignment]
    #: carried (src_sid, dst_sid) pairs between distinct statements — these
    #: must not share a merged cover loop
    carried_pairs: frozenset = frozenset()

    @property
    def any_vector(self) -> bool:
        return any(s.vector for s in self.stmts)


@dataclass
class NestPlan:
    """A perfectly-nested rectangular loop chain emitted as N-d blocks."""

    chain: list              # DoLoops, outermost first
    groups: list             # list[list[_StmtPlan]] sharing one cover loop
    expanded: dict           # scalar name -> temp name
    orient: tuple            # loop indices in array-axis order
    report: LoopReport = None  # type: ignore[assignment]


def _var_names(e: Expr) -> set[str]:
    return {n.name.lower() for n in e.walk() if isinstance(n, Var)}


def _scalar_reads(stmt: Assign) -> set[str]:
    """Scalar names read anywhere in a statement (rhs + lhs subscripts)."""
    names = _var_names(stmt.rhs)
    if isinstance(stmt.lhs, ArrayRef):
        for s in stmt.lhs.subscripts:
            names |= _var_names(s)
    return names


def _is_subseq(sub, seq) -> bool:
    it = iter(seq)
    return all(v in it for v in sub)


def _guard_key(kernel: "CompiledKernel", sid: int):
    """Canonical identity of a statement's guard iteration set.

    Statements in the same loop body whose keys compare equal are admitted
    on identical iteration sets on every rank: their guards are built from
    the same nest bounds intersected with the union of their ON_HOME term
    sets, and ``cp_key`` (§5) identifies terms that induce the same data
    partition.  ``None`` means unguarded/replicated (full range)."""
    scp = kernel.cps.get(sid)
    if scp is None or scp.cp.is_replicated:
        return None
    keys = set()
    for t in scp.cp.terms:
        k = cp_key(t, kernel.ctx)
        if k is None:
            return None  # undistributed term replicates the statement
        keys.add(k)
    return frozenset(keys)


def _merge_groups(kernel: "CompiledKernel", plans, carried_pairs):
    """Partition consecutive vector statements into merge groups: equal
    guard keys and no carried dependence between group members."""
    groups: list[list] = []
    for p in plans:
        if groups:
            g = groups[-1]
            if (
                _guard_key(kernel, p.stmt.sid) == _guard_key(kernel, g[0].stmt.sid)
                and not any(
                    (a.stmt.sid, p.stmt.sid) in carried_pairs
                    or (p.stmt.sid, a.stmt.sid) in carried_pairs
                    for a in g
                )
            ):
                g.append(p)
                continue
        groups.append([p])
    return groups


# ---------------------------------------------------------------------------
# vector expression emission
# ---------------------------------------------------------------------------

def _check_plain(names: set[str], ctx: _Ctx, where: str) -> None:
    bad = names & ctx.written
    if bad:
        raise VectorUnsupported(f"{where} reads loop-written scalar {sorted(bad)[0]!r}")
    bad = names & set(ctx.expanded)
    if bad:
        raise VectorUnsupported(f"{where} uses expanded scalar {sorted(bad)[0]!r}")


def _slice_src(s: Expr, ref_name: str, var: str, lo: str, hi: str, ctx: _Ctx) -> str:
    """``K.fsl`` source for one subscript affine in *var* over [lo, hi]."""
    a = to_affine(s)
    if a is None:
        raise VectorUnsupported(
            f"non-affine subscript {s} of {ref_name} uses {var}"
        )
    c = a.coeff(var)
    rest = a - LinExpr({var: c})
    if c <= 0:
        raise VectorUnsupported(
            f"subscript {s} of {ref_name}: non-positive stride {c} in {var}"
        )
    _check_plain({v.lower() for v in rest.vars()}, ctx, f"subscript {s}")
    rest_src = emit_expr(from_affine(rest), ctx.locals_)
    if c == 1:
        return f"K.fsl({lo} + ({rest_src}), {hi} + ({rest_src}))"
    return f"K.fsl({c}*{lo} + ({rest_src}), {c}*{hi} + ({rest_src}), {c})"


def _emit_array_access(ref: ArrayRef, ctx: _Ctx, write: bool) -> tuple[str, tuple]:
    """Subscript-tuple source for an array section; returns ``(subs, used)``
    where *used* lists the vectorized loop indices in axis order."""
    vecs = ctx.vec_vars()
    subs_src = []
    used: list[str] = []
    for s in ref.subscripts:
        names = _var_names(s)
        vec_here = [v for v in vecs if v in names]
        if len(vec_here) > 1:
            raise VectorUnsupported(
                f"subscript {s} of {ref.name} couples loop indices "
                f"{'/'.join(vec_here)}"
            )
        if vec_here:
            v = vec_here[0]
            if v in used:
                raise VectorUnsupported(
                    f"{ref.name}: multiple subscripts use the loop index {v}"
                )
            lo, hi = ctx.range_of(v)
            subs_src.append(_slice_src(s, ref.name, v, lo, hi, ctx))
            used.append(v)
        else:
            _check_plain(names, ctx, f"subscript {s}")
            subs_src.append(emit_expr(s, ctx.locals_))
    if ctx.orient is not None and not _is_subseq(used, ctx.orient):
        # numpy keeps slice axes in array order; a reference transposed
        # against the nest's orientation would need an axis swap — fall back
        raise VectorUnsupported(
            f"{ref.name}: loop indices appear in {tuple(used)} order but "
            f"the nest's store orientation is {ctx.orient}"
        )
    if write:
        missing = set(vecs) - set(used)
        if missing:
            raise VectorUnsupported(
                f"store to {ref.name} does not vary with "
                f"{'/'.join(sorted(missing))}"
            )
    return ", ".join(subs_src), tuple(used)


def _lift(src: str, used, ctx: _Ctx) -> str:
    """Broadcast-lift a partial-axes section to the block's shape: insert
    unit axes at the orientation positions the value does not vary with."""
    if ctx.orient is None or len(ctx.orient) <= 1 or tuple(used) == ctx.orient:
        return src
    idx = ", ".join(":" if v in used else "None" for v in ctx.orient)
    return f"{src}[{idx}]"


def emit_vexpr(e: Expr, ctx: _Ctx) -> str:
    """Python source evaluating *e* elementwise over the block defined by
    *ctx* (a numpy array, or a scalar to broadcast)."""
    if isinstance(e, Num):
        return repr(e.value)
    if isinstance(e, Var):
        n = e.name.lower()
        if n in ctx.vec_vars():
            lo, hi = ctx.range_of(n)
            return _lift(f"K.arange({lo}, {hi})", (n,), ctx)
        if n in ctx.expanded:
            if not ctx.outer:
                return f"{ctx.expanded[n]}[{ctx.lo} - {ctx.base}:{ctx.hi} + 1 - {ctx.base}]"
            slc = ", ".join(
                f"{ctx.range_of(v)[0]} - {ctx.base_of(v)}:"
                f"{ctx.range_of(v)[1]} + 1 - {ctx.base_of(v)}"
                for v in ctx.orient
            )
            return f"{ctx.expanded[n]}[{slc}]"
        if n in ctx.written:
            raise VectorUnsupported(f"reads scalar {n!r} assigned in the loop")
        if n in ctx.locals_:
            return n
        return f"S[{n!r}]"
    if isinstance(e, UnOp):
        if e.op == "-":
            return f"(-{emit_vexpr(e.operand, ctx)})"
        raise VectorUnsupported(f"operator {e.op!r} has no vector form")
    if isinstance(e, BinOp):
        if e.op == "/":
            return f"K.vdiv({emit_vexpr(e.left, ctx)}, {emit_vexpr(e.right, ctx)})"
        op = _VEC_BINOP.get(e.op)
        if op is None:
            raise VectorUnsupported(f"operator {e.op!r} has no vector form")
        return f"({emit_vexpr(e.left, ctx)} {op} {emit_vexpr(e.right, ctx)})"
    if isinstance(e, ArrayRef):
        subs, used = _emit_array_access(e, ctx, write=False)
        if not used:  # loop-invariant element: broadcast
            return f"A[{e.name.lower()!r}].get(({subs},))"
        return _lift(f"A[{e.name.lower()!r}].vget(({subs},))", used, ctx)
    if isinstance(e, FuncCall):
        name = e.name.lower()
        args = [emit_vexpr(a, ctx) for a in e.args]
        if name in ("min", "dmin1", "max", "dmax1"):
            fn = "K.np.minimum" if name in ("min", "dmin1") else "K.np.maximum"
            acc = args[0]
            for a in args[1:]:
                acc = f"{fn}({acc}, {a})"
            return acc
        fn = _VECFUNC.get(name)
        if fn is None:
            raise VectorUnsupported(f"call to {e.name!r} has no vector form")
        return f"{fn}({', '.join(args)})"
    raise VectorUnsupported(f"cannot vectorize {type(e).__name__}")


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------

def _expansion_candidates(
    kernel: "CompiledKernel", assigns: list[Assign]
) -> dict[str, str]:
    """Scalars assigned exactly once per iteration, only read after the
    write, whose readers' guards are subsumed by the writer's guard."""
    writes: dict[str, list[int]] = {}
    for i, s in enumerate(assigns):
        if isinstance(s.lhs, Var):
            writes.setdefault(s.lhs.name.lower(), []).append(i)
    out: dict[str, str] = {}
    for name, idxs in writes.items():
        if len(idxs) != 1:
            continue
        wi = idxs[0]
        # a read at or before the write sees the previous iteration's value
        if any(name in _scalar_reads(assigns[j]) for j in range(wi + 1)):
            continue
        wscp = kernel.cps.get(assigns[wi].sid)
        w_unguarded = wscp is None or wscp.cp.is_replicated
        safe = True
        for j in range(wi + 1, len(assigns)):
            if name not in _scalar_reads(assigns[j]):
                continue
            if w_unguarded:
                continue
            rscp = kernel.cps.get(assigns[j].sid)
            if (
                rscp is not None
                and not rscp.cp.is_replicated
                and set(rscp.cp.terms) <= set(wscp.cp.terms)
            ):
                continue  # reader executes only where the writer did
            safe = False
            break
        if safe:
            out[name] = f"_vx_{name}"
    return out


def _classify(
    kernel: "CompiledKernel",
    assigns: list[Assign],
    expanded: dict[str, str],
    written: set[str],
    locals_: set,
    var: str,
    forced_scalar: dict[int, str],
) -> list[_StmtPlan]:
    seg = _Ctx(var, set(locals_), expanded, frozenset(written - set(expanded)),
               "_sa", "_sb", "_v0")
    plans: list[_StmtPlan] = []
    for s in assigns:
        if s.sid in forced_scalar:
            plans.append(_StmtPlan(s, False, forced_scalar[s.sid]))
            continue
        try:
            if isinstance(s.lhs, ArrayRef) and s.lhs.rank > 0:
                subs, _ = _emit_array_access(s.lhs, seg, write=True)
                rhs = emit_vexpr(s.rhs, seg)
                plans.append(_StmtPlan(
                    s, True, payload=("array", s.lhs.name.lower(), subs), rhs_src=rhs))
            else:
                name = s.lhs.name.lower()
                if name not in expanded:
                    raise VectorUnsupported(
                        f"scalar {name!r} assigned in the loop is not expandable"
                    )
                rhs = emit_vexpr(s.rhs, seg)
                plans.append(_StmtPlan(
                    s, True, payload=("expand", name, expanded[name]), rhs_src=rhs))
        except VectorUnsupported as exc:
            plans.append(_StmtPlan(s, False, str(exc)))
    return plans


def plan_loop(kernel: "CompiledKernel", loop: DoLoop, locals_: set) -> LoopPlan:
    """Decide, statement by statement, how to emit one innermost loop."""

    def bail(reason: str) -> LoopPlan:
        plan = LoopPlan(fallback=reason)
        plan.report = LoopReport(loop.var, loop.sid, "scalar", reason)
        return plan

    for c in loop.body:
        if not isinstance(c, (Assign, Continue)):
            return bail(f"{type(c).__name__} in loop body")
    step = to_affine(loop.step)
    if step is None or not step.is_constant() or step.constant != 1:
        return bail("non-unit loop step")
    assigns = [s for s in loop.body if isinstance(s, Assign)]
    if not assigns:
        return bail("empty body")
    written = {s.lhs.name.lower() for s in assigns if isinstance(s.lhs, Var)}

    expanded = _expansion_candidates(kernel, assigns)
    forced_scalar: dict[int, str] = {}
    while True:
        plans = _classify(kernel, assigns, expanded, written, locals_, loop.var,
                          forced_scalar)
        # expansion is only valid if every statement touching the scalar is
        # vectorized; otherwise un-expand and reclassify
        kill = set()
        for p in plans:
            if p.vector:
                continue
            touched = _scalar_reads(p.stmt)
            if isinstance(p.stmt.lhs, Var):
                touched |= {p.stmt.lhs.name.lower()}
            kill |= touched & set(expanded)
        if not kill:
            # distribution legality: no backward level-1 dependence
            order = {s.sid: i for i, s in enumerate(assigns)}
            vec = {p.stmt.sid for p in plans if p.vector}
            deps = DependenceAnalyzer(
                loop, kernel.params, ignore_vars=expanded
            ).dependences()
            bad = None
            demote: dict[int, str] = {}
            fwd_pairs: set = set()
            for d in deps:
                if d.level != 1:
                    continue
                if d.src is d.dst:
                    if d.src.sid not in vec:
                        continue  # scalar mini-loop keeps iteration order
                    if d.kind == "anti":
                        continue  # numpy reads the full rhs before storing
                    demote[d.src.sid] = (
                        f"carried {d.kind} dependence on {d.var!r}")
                    continue
                if order[d.src.sid] < order[d.dst.sid]:
                    # forward carried: preserved by distribution, but the
                    # two statements must not share a merged cover loop
                    fwd_pairs.add((d.src.sid, d.dst.sid))
                    continue
                bad = d
                break
            if bad is not None:
                return bail(
                    f"backward loop-carried {bad.kind} dependence on {bad.var!r} "
                    f"(s{bad.src.sid} -> s{bad.dst.sid})"
                )
            if demote:
                forced_scalar.update(demote)
                continue
            carried_pairs = frozenset(fwd_pairs)
            break
        expanded = {k: v for k, v in expanded.items() if k not in kill}

    plan = LoopPlan(fallback=None, stmts=plans, expanded=expanded,
                    carried_pairs=carried_pairs)
    vec_sids = tuple(p.stmt.sid for p in plans if p.vector)
    sc_sids = tuple(p.stmt.sid for p in plans if not p.vector)
    if not vec_sids:
        reason = "; ".join(sorted({p.reason for p in plans if p.reason}))
        plan.fallback = f"no vectorizable statements ({reason})"
        plan.report = LoopReport(loop.var, loop.sid, "scalar", plan.fallback)
        return plan
    status = "vector" if not sc_sids else "mixed"
    reason = "; ".join(sorted({p.reason for p in plans if p.reason}))
    plan.report = LoopReport(
        loop.var, loop.sid, status, reason, vec_sids, sc_sids,
        tuple(sorted(expanded)),
    )
    return plan


def plan_nest(kernel: "CompiledKernel", top: DoLoop, locals_: set):
    """Plan a perfectly-nested rectangular loop chain starting at *top* as
    one N-d vector block; returns a :class:`NestPlan` or None (the caller
    descends one loop deeper and retries, bottoming out at the 1-d
    per-statement planner).

    Full distribution of *all* chain loops around every statement is legal
    iff no carried dependence (any level) runs backward textually.  Per
    statement, only anti dependences carried by the *innermost* level are
    allowed (box cover executes in lexicographic iteration order + NumPy's
    full-RHS materialization); a carried flow/output dependence, or an
    anti dependence carried by an outer level, fails the nest.  Scalar
    writes become block-shaped expanded temporaries when every reader's
    guard is subsumed by the writer's."""
    chain = [top]
    node = top
    while True:
        kids = [c for c in node.body if not isinstance(c, Continue)]
        if len(kids) == 1 and isinstance(kids[0], DoLoop):
            chain.append(kids[0])
            node = kids[0]
            continue
        break
    if len(chain) < 2:
        return None
    inner = chain[-1]
    if not all(isinstance(c, (Assign, Continue)) for c in inner.body):
        return None
    seen_vars: set[str] = set()
    for lp in chain:
        step = to_affine(lp.step)
        if step is None or not step.is_constant() or step.constant != 1:
            return None
        if seen_vars & (_var_names(lp.lo) | _var_names(lp.hi)):
            return None  # triangular: bounds vary with an enclosing chain index
        seen_vars.add(lp.var)
    assigns = [s for s in inner.body if isinstance(s, Assign)]
    if not assigns:
        return None
    if any(isinstance(s.lhs, ArrayRef) and s.lhs.rank == 0 for s in assigns):
        return None
    depth = len(chain)
    written = {s.lhs.name.lower() for s in assigns if isinstance(s.lhs, Var)}
    expanded = _expansion_candidates(kernel, assigns) if written else {}
    if written - set(expanded):
        return None  # an unexpandable scalar write: leave to shallower plans
    ctx = _Ctx(
        inner.var, set(locals_), expanded, frozenset(),
        f"_x{depth - 1}a", f"_x{depth - 1}b", f"_b{depth - 1}0",
        outer=tuple(
            (lp.var, f"_x{l}a", f"_x{l}b", f"_b{l}0")
            for l, lp in enumerate(chain[:-1])
        ),
    )
    first_store = next(
        (s for s in assigns if isinstance(s.lhs, ArrayRef)), None)
    if first_store is None:
        return None
    plans: list[_StmtPlan] = []
    try:
        # the first store defines the nest's orientation (which loop index
        # runs along which array axis); every other reference must match
        _, used = _emit_array_access(first_store.lhs, ctx, write=True)
        ctx.orient = used
        for s in assigns:
            if isinstance(s.lhs, ArrayRef):
                subs, _ = _emit_array_access(s.lhs, ctx, write=True)
                rhs = emit_vexpr(s.rhs, ctx)
                plans.append(_StmtPlan(
                    s, True, payload=("array", s.lhs.name.lower(), subs),
                    rhs_src=rhs))
            else:
                name = s.lhs.name.lower()
                rhs = emit_vexpr(s.rhs, ctx)
                plans.append(_StmtPlan(
                    s, True, payload=("expand", name, expanded[name]),
                    rhs_src=rhs))
    except VectorUnsupported:
        return None
    order = {s.sid: i for i, s in enumerate(assigns)}
    carried: set = set()
    for d in DependenceAnalyzer(
        top, kernel.params, ignore_vars=expanded
    ).dependences():
        if d.level == 0:
            continue  # loop-independent: forward textual, preserved
        if d.src is d.dst:
            if d.kind == "anti" and d.level == depth:
                continue  # innermost-carried anti: box order + materialization
            return None
        if order[d.src.sid] < order[d.dst.sid]:
            carried.add((d.src.sid, d.dst.sid))
            continue  # forward: all of src runs before any of dst
        return None
    plan = NestPlan(
        chain=chain,
        groups=_merge_groups(kernel, plans, carried),
        expanded=expanded,
        orient=ctx.orient,
    )
    plan.report = LoopReport(
        ",".join(lp.var for lp in chain), top.sid, "vector",
        f"{depth}-d block", tuple(p.stmt.sid for p in plans),
        expanded=tuple(sorted(expanded)),
    )
    return plan


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------

def try_emit_vector_loop(
    kernel: "CompiledKernel",
    loop: DoLoop,
    lines: list[str],
    indent: int,
    locals_: set,
) -> bool:
    """Emit *loop* as NumPy slice code if it is a provably-safe innermost
    affine loop (or heads a perfect rectangular nest, emitted as N-d
    blocks); returns False (caller emits scalar and descends) otherwise."""
    if any(isinstance(c, DoLoop) for c in loop.body):
        key = ("nest", loop.sid)
        res = kernel._vector_plans.get(key)
        if res is None:
            res = plan_nest(kernel, loop, locals_) or False
            kernel._vector_plans[key] = res
        if res is False:
            return False  # not a vectorizable chain: descend
        kernel.vector_report[loop.sid] = res.report
        _emit_plan_nest(kernel, res, lines, indent, locals_)
        return True
    plan = kernel._vector_plans.get(loop.sid)
    if plan is None:
        plan = plan_loop(kernel, loop, locals_)
        kernel._vector_plans[loop.sid] = plan
    kernel.vector_report[loop.sid] = plan.report
    if plan.fallback is not None:
        return False
    _emit_plan(kernel, loop, plan, lines, indent, locals_)
    return True


def _emit_plan_nest(
    kernel: "CompiledKernel",
    plan: NestPlan,
    lines: list[str],
    indent: int,
    locals_: set,
) -> None:
    from .spmd import sorted_locals

    chain = plan.chain
    depth = len(chain)
    pad = "    " * indent
    for l, lp in enumerate(chain):
        lines.append(
            f"{pad}_b{l}0, _b{l}1 = int({emit_expr(lp.lo, locals_)}), "
            f"int({emit_expr(lp.hi, locals_)})"
        )
    cond = " and ".join(f"_b{l}0 <= _b{l}1" for l in range(depth))
    lines.append(f"{pad}if {cond}:")
    bp = pad + "    "
    chain_vars = {lp.var for lp in chain}
    names = sorted_locals(set(locals_) | chain_vars, kernel._loop_order)
    tpl = "(" + ", ".join(
        "None" if n in chain_vars else n for n in names) + ",)"
    level = {lp.var: l for l, lp in enumerate(chain)}
    for temp in plan.expanded.values():
        shape = ", ".join(
            f"_b{level[v]}1 - _b{level[v]}0 + 1" for v in plan.orient)
        lines.append(f"{bp}{temp} = K.np.empty(({shape}))")
    bounds = ", ".join(f"_b{l}0, _b{l}1" for l in range(depth))
    coords = ", ".join(f"_x{l}a, _x{l}b" for l in range(depth))
    for group in plan.groups:
        sid = group[0].stmt.sid
        lines.append(
            f"{bp}for {coords} in G.boxes({sid}, {tpl}, {bounds}):")
        for p in group:
            if p.payload[0] == "expand":
                _, name, temp = p.payload
                slc = ", ".join(
                    f"_x{level[v]}a - _b{level[v]}0:"
                    f"_x{level[v]}b + 1 - _b{level[v]}0"
                    for v in plan.orient)
                lines.append(f"{bp}    {temp}[{slc}] = {p.rhs_src}")
                corner = ", ".join(
                    f"_x{level[v]}b - _b{level[v]}0" for v in plan.orient)
                lines.append(f"{bp}    S[{name!r}] = {temp}[{corner}]")
            else:
                _, aname, subs = p.payload
                lines.append(f"{bp}    A[{aname!r}].vset(({subs},), {p.rhs_src})")


def _emit_plan(
    kernel: "CompiledKernel",
    loop: DoLoop,
    plan: LoopPlan,
    lines: list[str],
    indent: int,
    locals_: set,
) -> None:
    from .spmd import sorted_locals

    pad = "    " * indent
    lo_src = emit_expr(loop.lo, locals_)
    hi_src = emit_expr(loop.hi, locals_)
    lines.append(f"{pad}_v0, _v1 = int({lo_src}), int({hi_src})")
    lines.append(f"{pad}if _v0 <= _v1:")
    bp = pad + "    "
    names = sorted_locals(set(locals_) | {loop.var}, kernel._loop_order)
    tpl = "(" + ", ".join("None" if n == loop.var else n for n in names) + ",)"
    for temp in plan.expanded.values():
        lines.append(f"{bp}{temp} = K.np.empty(_v1 - _v0 + 1)")
    stmts = plan.stmts
    i = 0
    while i < len(stmts):
        if not stmts[i].vector:
            # consecutive scalar-fallback statements share one mini-loop,
            # preserving their original relative iteration order
            j = i
            while j < len(stmts) and not stmts[j].vector:
                j += 1
            lines.append(f"{bp}for {loop.var} in K.do_range(_v0, _v1, 1):")
            inner = set(locals_) | {loop.var}
            for k in range(i, j):
                kernel._emit_stmt(stmts[k].stmt, lines, indent + 2, inner)
            i = j
            continue
        j = i
        while j < len(stmts) and stmts[j].vector:
            j += 1
        for group in _merge_groups(kernel, stmts[i:j], plan.carried_pairs):
            lines.append(
                f"{bp}for _sa, _sb in "
                f"G.segments({group[0].stmt.sid}, {tpl}, _v0, _v1):")
            for p in group:
                if p.payload[0] == "expand":
                    # evaluate only over the writer's admitted runs; readers'
                    # guards are subsumed, so unfilled positions are never
                    # observed
                    _, name, temp = p.payload
                    lines.append(
                        f"{bp}    {temp}[_sa - _v0:_sb + 1 - _v0] = {p.rhs_src}")
                    lines.append(f"{bp}    S[{name!r}] = {temp}[_sb - _v0]")
                else:
                    _, aname, subs = p.payload
                    lines.append(
                        f"{bp}    A[{aname!r}].vset(({subs},), {p.rhs_src})")
        i = j
