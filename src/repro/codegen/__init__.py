"""SPMD code generation: HPF kernel + CPs + comm plan → Python node program.

:func:`compile_kernel` drives the whole dHPF pipeline on one program unit —
CP selection, NEW/LOCALIZE propagation, communication-sensitive grouping,
communication analysis with availability filtering — and emits an
*executable Python node program* (real generated source, ``exec``'d) that
runs on the :class:`~repro.runtime.VirtualMachine`:

- per-statement iteration guards realized from the CP iteration sets,
- pre-nest (vectorized, coalesced) read communication and post-nest
  write-backs realized by enumerating the symbolic non-local sets per
  rank pair.

Pipelined (loop-carried) communication is not code-generated — the paper's
optimizations exist precisely to remove inner-loop communication from these
kernels; wavefront execution is exercised by :mod:`repro.parallel.dhpf`.
"""

from .spmd import CompiledKernel, CodegenUnsupported, compile_kernel

__all__ = ["CompiledKernel", "CodegenUnsupported", "compile_kernel"]
