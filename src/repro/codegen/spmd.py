"""The SPMD compiler driver and the generated-code runtime library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..comm import CommAnalyzer, CommEvent, CommPlan, Placement
from ..cp.loopdist import CPGrouper
from ..cp.localize import propagate_localize_cps
from ..cp.model import CP, cp_iteration_set, cp_key
from ..cp.nest import NestInfo
from ..cp.privatizable import propagate_new_cps
from ..cp.select import CPSelector, StatementCP
from ..diag import E_UNSUPPORTED, W_BUDGET, DiagnosticSink
from ..distrib.layout import DistributionContext, PDIM
from ..ir.expr import ArrayRef, Var
from ..ir.interp import FortranArray, fortran_mod, fortran_nint, fortran_sign
from ..ir.program import Program, Subroutine
from ..ir.stmt import Assign, Continue, DoLoop, IfThen, Return, Stmt
from ..ir.visit import collect_array_refs, walk_stmts
from ..isets import BudgetExceeded, IsetBudget, iset_budget
from ..isets.profile import phase as profile_phase
from ..runtime.sim import Rank, VirtualMachine
from .pyemit import emit_assign_target, emit_expr


class CodegenUnsupported(Exception):
    """The kernel needs a feature the code generator does not implement
    (pipelined communication, CALL statements)."""


# ---------------------------------------------------------------------------
# compile driver
# ---------------------------------------------------------------------------

@dataclass
class NestSelection:
    """The rank-symbolic half of one nest's analysis: CP choices,
    privatization scopes, and the comm-exempt array names.  Contains no
    communication sets, so it holds for *any* processor count with the
    same distribution layout — computed once at a canonical grid
    (:func:`repro.distrib.layout.canonical_nprocs`) and specialized per
    target ``nprocs`` by :func:`analyze_program`.  ``failure`` records
    why selection degraded (lenient mode only); such nests replay the
    replicated fallback at specialization time."""

    cps: "dict[int, StatementCP]"
    private_arrays: "set[str]"
    localized_arrays: "set[str]"
    no_comm: "frozenset[str]"
    failure: "str | None" = None


@dataclass
class ProgramSelection:
    """Per-nest :class:`NestSelection` skeletons for every top-level DO
    nest of one subroutine, in body order, stamped with the canonical
    ``nprocs`` they were computed at."""

    nprocs: int
    nests: "list[NestSelection]"


def _select_one_nest(
    item: DoLoop,
    ctx: DistributionContext,
    merged: dict[str, int],
    sel: CPSelector,
    grouper: CPGrouper,
) -> NestSelection:
    """The rank-symbolic per-nest half of :func:`analyze_program`: CP
    selection, NEW/LOCALIZE propagation, comm-sensitive grouping."""
    with profile_phase("cp-select"):
        cps = sel.select(item, merged)
    # NEW anywhere in this nest: propagate across the whole nest (the
    # paper's privatization scope is the enclosing parallel loop; uses
    # live in sibling loops of the definition)
    new_vars: list[str] = []
    for loop in walk_stmts([item]):
        if isinstance(loop, DoLoop) and loop.directive:
            new_vars.extend(loop.directive.new_vars)
    privs = {v.lower() for v in new_vars}
    with profile_phase("propagate"):
        if new_vars:
            propagate_new_cps(item, new_vars, cps, NestInfo(item, merged), ctx)
        # LOCALIZE scope
        locs: set[str] = set()
        if item.directive and item.directive.localize_vars:
            locs = {v.lower() for v in item.directive.localize_vars}
            propagate_localize_cps(
                item, item.directive.localize_vars, cps, ctx, merged
            )
    # communication-sensitive grouping for the remaining local choices
    with profile_phase("group"):
        res = grouper.group(item, cps=cps, params=merged)
    cps = res.cps
    no_comm: set[str] = set()
    for loop in walk_stmts([item]):
        if isinstance(loop, DoLoop) and loop.directive:
            no_comm |= {v.lower() for v in loop.directive.new_vars}
            no_comm |= {v.lower() for v in loop.directive.localize_vars}
    return NestSelection(cps, privs, locs, frozenset(no_comm))


def _comm_one_nest(
    item: DoLoop,
    nsel: NestSelection,
    ctx: DistributionContext,
    merged: dict[str, int],
) -> CommPlan:
    """Specialize one selected nest at a concrete processor count:
    communication analysis under *ctx* with the skeleton's CP choices."""
    with profile_phase("comm"):
        return CommAnalyzer(
            item, nsel.cps, ctx, merged, exclude_arrays=nsel.no_comm
        ).analyze()


def _analyze_one_nest(
    item: DoLoop,
    ctx: DistributionContext,
    merged: dict[str, int],
    sel: CPSelector,
    grouper: CPGrouper,
) -> "tuple[dict[int, StatementCP], CommPlan, set[str], set[str]]":
    """The per-nest half of :func:`analyze_program`: CP selection,
    NEW/LOCALIZE propagation, comm-sensitive grouping, comm analysis."""
    nsel = _select_one_nest(item, ctx, merged, sel, grouper)
    plan = _comm_one_nest(item, nsel, ctx, merged)
    return nsel.cps, plan, nsel.private_arrays, nsel.localized_arrays


def _expr_scalar_names(e) -> set[str]:
    """Lower-cased names of every scalar Var in an expression tree."""
    return {n.name.lower() for n in e.walk() if isinstance(n, Var)}


def _loop_bound_exprs(loop: DoLoop) -> tuple:
    return (loop.lo, loop.hi) + ((loop.step,) if loop.step is not None else ())


def _nest_degrade_reason(
    item: DoLoop,
    cps: "dict[int, StatementCP]",
    plan: CommPlan,
    ctx: DistributionContext,
    merged: Mapping[str, int],
    private: "frozenset[str] | set[str]" = frozenset(),
) -> "str | None":
    """Why generated code for this *analyzed* nest would be incorrect (or
    unbuildable), or None if the analysis covered everything.

    These are exactly the constructs the analysis pipeline silently skips —
    non-affine subscripts or bounds, runtime-scalar subscripts/trip counts,
    distributed reads in IF conditions, partitioned or read-modify writes to
    undistributed (replicated) arrays, pipelined placements — for which
    emitted code would read stale non-local data, race on shared data, or
    fail route binding.  ``private`` names NEW/LOCALIZE arrays whose
    partitioned handling is already correct by construction."""
    nest = NestInfo(item, merged)
    known = set(merged)
    loop_vars = {
        s.var.lower() for s in walk_stmts([item]) if isinstance(s, DoLoop)
    }
    dist_touch = False
    shared_repl_writes: set[str] = set()
    read_names: set[str] = set()
    for s in walk_stmts([item]):
        if isinstance(s, IfThen):
            for ref in collect_array_refs(s.cond):
                read_names.add(ref.name.lower())
                if ctx.is_distributed(ref.name):
                    return f"IF condition reads distributed array {ref.name!r}"
        elif isinstance(s, DoLoop):
            for e in _loop_bound_exprs(s):
                for ref in collect_array_refs(e):
                    read_names.add(ref.name.lower())
                    if ctx.is_distributed(ref.name):
                        return f"loop bound reads distributed array {ref.name!r}"
        elif isinstance(s, Assign):
            read_names |= {r.name.lower() for r in collect_array_refs(s.rhs)}
            refs = list(collect_array_refs(s.rhs))
            if isinstance(s.lhs, ArrayRef):
                refs.append(s.lhs)
                for e in s.lhs.subscripts:
                    for r in collect_array_refs(e):
                        refs.append(r)
                        read_names.add(r.name.lower())
                lname = s.lhs.name.lower()
                if lname not in private and ctx.layout(lname) is None:
                    scp = cps.get(s.sid)
                    if scp is not None and not scp.cp.is_replicated:
                        # each rank would write only its slice of an array
                        # every rank is supposed to hold in full
                        return (
                            f"partitioned write to undistributed array {lname!r}"
                        )
                    shared_repl_writes.add(lname)
            drefs = [r for r in refs if ctx.is_distributed(r.name)]
            if not drefs:
                continue
            dist_touch = True
            scp = cps.get(s.sid)
            if scp is not None and not scp.cp.is_replicated and nest.bounds_of(s) is None:
                return "non-affine loop structure around a partitioned statement"
            for r in drefs:
                if r.affine_subscripts() is None:
                    return f"non-affine subscript on distributed array {r.name!r}"
                for sub_e in r.subscripts:
                    free = _expr_scalar_names(sub_e) - loop_vars - known
                    if free:
                        return (
                            f"subscript of {r.name!r} uses runtime scalar "
                            f"{sorted(free)[0]!r}"
                        )
            if (
                scp is not None
                and not scp.cp.is_replicated
                and isinstance(s.lhs, ArrayRef)
                and ctx.is_distributed(s.lhs.name)
                and s.lhs.name.lower() not in private
            ):
                # NEW/LOCALIZE arrays are per-rank private copies, so a
                # non-owner-computes write cannot race across ranks
                reason = _output_race_reason(s, scp, nest, ctx)
                if reason is not None:
                    return reason
    # an array both written in the nest and fetched by a hoisted read event
    # has an intra-nest cross-rank dependence; the MPI target's pre-nest
    # copy-in handles the anti direction, but the shmem target realizes the
    # event as a bare barrier, so another rank's write can overtake the read
    written_names = {
        s.lhs.name.lower()
        for s in walk_stmts([item])
        if isinstance(s, Assign) and isinstance(s.lhs, ArrayRef)
    }
    for ev in plan.live_events():
        if ev.kind == "read" and ev.array.lower() in written_names:
            return (
                f"array {ev.array!r} is both communicated and written "
                "within the nest"
            )
        # a writeback means non-owner ranks hold the fresh values until the
        # post-nest merge, so any same-nest read of that array on the owner
        # sees stale data (a flow dependence routed through the writeback)
        if ev.kind == "writeback" and ev.array.lower() in read_names:
            return (
                f"array {ev.array!r} is read in the nest but written "
                "non-owner-computes (stale reads before the writeback merges)"
            )
    racy = shared_repl_writes & read_names
    if racy:
        # replicated writes to a shared (undistributed) array the nest also
        # reads are not idempotent under the shmem target's concurrent
        # re-execution; degraded nests run single-writer there instead
        return (
            f"replicated write to shared array {sorted(racy)[0]!r} "
            "that the nest also reads"
        )
    if dist_touch or plan.live_events():
        for s in walk_stmts([item]):
            if isinstance(s, DoLoop):
                for e in _loop_bound_exprs(s):
                    free = _expr_scalar_names(e) - loop_vars - known
                    if free:
                        return f"loop bound uses runtime scalar {sorted(free)[0]!r}"
    for ev in plan.live_events():
        if ev.placement.pipelined:
            return f"pipelined communication for array {ev.array!r}"
    return None


def _output_race_reason(s: Assign, scp: StatementCP, nest, ctx) -> "str | None":
    """Cross-rank output-race check for a partitioned distributed write.

    Owner-computes (the CP's home is the lhs reference itself) serializes
    same-element writes on the owning rank, preserving serial order.  Under
    any other home, writes reach the owner via write-back messages from
    whichever ranks execute the writing iterations — safe only if distinct
    iterations write distinct elements, i.e. the lhs subscripts use each
    enclosing loop variable in exactly one position."""
    from ..cp.model import OnHomeRef

    lhs_term = OnHomeRef.from_ref(s.lhs)
    lhs_key = cp_key(lhs_term, ctx) if lhs_term is not None else None
    term_keys = {cp_key(t, ctx) for t in scp.cp.terms}
    if lhs_key is not None and lhs_key in term_keys:
        return None  # owner-computes
    enclosing = {loop.var.lower() for loop in nest.loops_of(s)}
    sub_vars = [_expr_scalar_names(e) & enclosing for e in s.lhs.subscripts]
    flat = [v for vs in sub_vars for v in vs]
    injective = (
        set(flat) == enclosing
        and len(flat) == len(set(flat))
        and all(len(vs) <= 1 for vs in sub_vars)
    )
    if not injective:
        return (
            f"possible cross-rank output race writing {s.lhs.name!r} "
            "under a non-owner-computes partitioning"
        )
    return None


def _replicated_nest(
    item: DoLoop,
    ctx: DistributionContext,
    budget: "IsetBudget | None" = None,
) -> "tuple[dict[int, StatementCP], CommPlan]":
    """Conservative fallback plan for one nest: every rank executes every
    iteration (CP = replicated) on data made consistent by one pre-nest
    broadcast per distributed array the nest reads (each rank fetches the
    declared-bounds box minus its own elements from the owners).

    Correct by construction: after the broadcast every rank holds the
    owner's value of every element it may read; all ranks then compute
    identical values — including each owner for its own elements — so no
    write-back is needed and later nests still see owner-valid data.
    """
    from contextlib import nullcontext

    cps: dict[int, StatementCP] = {}
    read_arrays: set[str] = set()
    for s in walk_stmts([item]):
        if isinstance(s, Assign):
            cps[s.sid] = StatementCP(s, CP.replicated(), [], 0.0, source="fallback")
            for ref in collect_array_refs(s.rhs):
                read_arrays.add(ref.name.lower())
            if isinstance(s.lhs, ArrayRef):
                for e in s.lhs.subscripts:
                    for ref in collect_array_refs(e):
                        read_arrays.add(ref.name.lower())
        elif isinstance(s, IfThen):
            for ref in collect_array_refs(s.cond):
                read_arrays.add(ref.name.lower())
        elif isinstance(s, DoLoop):
            for e in _loop_bound_exprs(s):
                for ref in collect_array_refs(e):
                    read_arrays.add(ref.name.lower())
    events: list[CommEvent] = []
    guard = budget.suspend() if budget is not None else nullcontext()
    with guard:
        for name in sorted(read_arrays):
            layout = ctx.layout(name)
            if layout is None:
                continue
            data = ctx.declared_bounds_set(name).subtract(layout.ownership())
            if data.is_empty():
                continue
            events.append(CommEvent(name, "read", item, None, data, Placement(0), ()))
    return cps, CommPlan(events, (item,), frozenset())


def select_program(
    sub: Subroutine,
    ctx: DistributionContext,
    merged: Mapping[str, int],
    sink: "DiagnosticSink | None" = None,
    budget: "IsetBudget | None" = None,
) -> ProgramSelection:
    """Run the rank-symbolic half of the analysis pipeline (CP selection,
    NEW/LOCALIZE propagation, comm-sensitive grouping — everything
    :func:`analyze_program` does *except* communication analysis) on every
    top-level nest of *sub*.

    The result references only the distribution layout's structure, not
    concrete communication sets, so a selection computed at the canonical
    processor count (:func:`repro.distrib.layout.canonical_nprocs`) can be
    specialized to any target count via ``analyze_program(...,
    selection=...)``.  With a lenient *sink*, a nest whose selection fails
    records a ``failure`` reason instead of raising; specialization then
    degrades exactly those nests to replicated execution.
    """
    merged = dict(merged)
    sel = CPSelector(ctx, eval_params=merged)
    grouper = CPGrouper(ctx, sel)
    lenient = sink is not None and not sink.strict
    nests: list[NestSelection] = []
    nest_idx = -1
    for item in sub.body:
        if not isinstance(item, DoLoop):
            continue
        nest_idx += 1
        if not lenient:
            nests.append(_select_one_nest(item, ctx, merged, sel, grouper))
            continue
        try:
            nests.append(_select_one_nest(item, ctx, merged, sel, grouper))
        except BudgetExceeded as exc:
            if budget is not None:
                budget.reset_ops()  # fresh window for the remaining nests
            sink.warn(str(exc), code=W_BUDGET, pass_name="isets", nest=nest_idx)
            nests.append(
                NestSelection({}, set(), set(), frozenset(), failure=str(exc))
            )
        except Exception as exc:  # degrade at specialization, never crash
            nests.append(
                NestSelection(
                    {}, set(), set(), frozenset(),
                    failure=f"{type(exc).__name__}: {exc}",
                )
            )
    return ProgramSelection(ctx.nprocs, nests)


def analyze_program(
    sub: Subroutine,
    ctx: DistributionContext,
    merged: Mapping[str, int],
    sink: "DiagnosticSink | None" = None,
    budget: "IsetBudget | None" = None,
    selection: "ProgramSelection | None" = None,
) -> "tuple[dict[int, StatementCP], list[tuple[DoLoop, CommPlan]], set[str], set[str]]":
    """Run the dHPF analysis pipeline (CP selection, NEW/LOCALIZE
    propagation, comm-sensitive grouping, communication analysis) on every
    top-level nest of *sub*.

    Returns ``(cps, nest_plans, private_arrays, localized_arrays)``.  This
    is the code-generation-free front half of :func:`compile_kernel`; the
    static verifier (:mod:`repro.check`) uses it directly so that kernels
    the code generator rejects (pipelined communication, §5) can still be
    verified.

    With a precomputed *selection* (from :func:`select_program`, possibly
    at a different — canonical — processor count), CP selection is skipped
    entirely and only communication analysis runs under *ctx*: the
    rank-symbolic specialization path.  Skeleton nests carrying a
    ``failure`` marker degrade deterministically, independent of the
    target count.

    With a lenient *sink* (``DiagnosticSink(strict=False)``), any nest the
    pipeline cannot analyze soundly — a raised analysis error, a gap found
    by :func:`_nest_degrade_reason`, or a tripped iset *budget* — degrades
    to the replicated fallback of :func:`_replicated_nest` with an
    ``I-FALLBACK`` (or ``W-BUDGET``) diagnostic, instead of crashing or
    silently producing wrong code.
    """
    merged = dict(merged)
    cps_all: dict[int, StatementCP] = {}
    nest_plans: list[tuple[DoLoop, CommPlan]] = []
    private_arrays: set[str] = set()
    localized_arrays: set[str] = set()
    if selection is None:
        sel = CPSelector(ctx, eval_params=merged)
        grouper = CPGrouper(ctx, sel)
    lenient = sink is not None and not sink.strict
    nest_idx = -1
    for item in sub.body:
        if not isinstance(item, DoLoop):
            continue
        nest_idx += 1
        nsel: NestSelection | None = None
        if selection is not None:
            if nest_idx >= len(selection.nests):
                raise ValueError(
                    "selection skeleton does not match program nests"
                )
            nsel = selection.nests[nest_idx]
        if not lenient:
            if nsel is None:
                cps, plan, privs, locs = _analyze_one_nest(
                    item, ctx, merged, sel, grouper
                )
            else:
                if nsel.failure is not None:
                    raise ValueError(
                        f"selection failed for nest {nest_idx}: {nsel.failure}"
                    )
                plan = _comm_one_nest(item, nsel, ctx, merged)
                cps = nsel.cps
                privs = set(nsel.private_arrays)
                locs = set(nsel.localized_arrays)
        else:
            reason = nsel.failure if nsel is not None else None
            cps, plan, privs, locs = {}, None, set(), set()
            if reason is None:
                try:
                    if nsel is None:
                        cps, plan, privs, locs = _analyze_one_nest(
                            item, ctx, merged, sel, grouper
                        )
                    else:
                        cps = nsel.cps
                        privs = set(nsel.private_arrays)
                        locs = set(nsel.localized_arrays)
                        plan = _comm_one_nest(item, nsel, ctx, merged)
                    reason = _nest_degrade_reason(
                        item, cps, plan, ctx, merged, private=privs | locs
                    )
                except BudgetExceeded as exc:
                    if budget is not None:
                        budget.reset_ops()  # fresh window for remaining nests
                    sink.warn(str(exc), code=W_BUDGET, pass_name="isets", nest=nest_idx)
                    reason = str(exc)
                except Exception as exc:  # degrade, never crash
                    reason = f"{type(exc).__name__}: {exc}"
            if reason is not None:
                sink.fallback(
                    f"nest degraded to replicated execution: {reason}",
                    pass_name="cp", nest=nest_idx,
                )
                cps, plan = _replicated_nest(item, ctx, budget)
                privs, locs = set(), set()
        private_arrays |= privs
        localized_arrays |= locs
        cps_all.update(cps)
        nest_plans.append((item, plan))
    return cps_all, nest_plans, private_arrays, localized_arrays


def _strip_directives(sub: Subroutine) -> Subroutine:
    """Deep copy of *sub* with every HPF directive removed (declarative and
    loop-level).  With no DISTRIBUTE in scope nothing is distributed, so CP
    selection replicates every statement and no communication is generated —
    the maximally conservative, trivially correct compilation."""
    import copy

    bare = copy.deepcopy(sub)
    bare.processors = []
    bare.templates = []
    bare.aligns = []
    bare.distributes = []
    for s in walk_stmts(bare.body):
        if isinstance(s, DoLoop):
            s.directive = None
    return bare


def _flatten_program(prog: Program, sink: DiagnosticSink) -> Subroutine:
    """Lenient handling of multi-unit programs: inline every call bottom-up
    (callee-first) and return the root unit.  Raises a typed
    :class:`CompileError` (via *sink*) if a call cannot be inlined."""
    from ..transform.inline import InlineError, inline_calls

    order = prog.bottom_up_order()  # CompileError on recursion propagates
    called = {c.name.lower() for u in order for c in u.calls()}
    root = prog.main
    if root is None:
        uncalled = [u for u in order if u.name.lower() not in called]
        root = uncalled[-1] if uncalled else order[-1]
    for callee in order:
        if callee is root:
            continue
        for caller in order:
            if any(c.name.lower() == callee.name.lower() for c in caller.calls()):
                try:
                    n = inline_calls(prog, caller.name, callee.name)
                except InlineError as exc:
                    sink.error(
                        f"cannot inline CALL {callee.name}: {exc}",
                        code=E_UNSUPPORTED,
                        pass_name="ir",
                    )
                    raise sink.as_error()
                if n:
                    sink.fallback(
                        f"inlined {n} call(s) to {callee.name} into "
                        f"{caller.name} for single-unit compilation",
                        pass_name="ir",
                    )
    return root


def _stmt_array_refs(s: Stmt) -> "list[ArrayRef]":
    """Every ArrayRef a statement (and its children) touches."""
    refs: list[ArrayRef] = []
    for u in walk_stmts([s]):
        if isinstance(u, Assign):
            refs.extend(collect_array_refs(u.rhs))
            if isinstance(u.lhs, ArrayRef):
                refs.append(u.lhs)
                for e in u.lhs.subscripts:
                    refs.extend(collect_array_refs(e))
        elif isinstance(u, IfThen):
            refs.extend(collect_array_refs(u.cond))
        elif isinstance(u, DoLoop):
            for e in _loop_bound_exprs(u):
                refs.extend(collect_array_refs(e))
    return refs


def _build_lenient(
    sub: Subroutine,
    nprocs: int,
    params: "dict[str, int]",
    backend: str,
    sink: DiagnosticSink,
    budget: IsetBudget,
) -> "CompiledKernel":
    """One lenient compilation attempt.  Any exception escaping this
    function means the *whole program* must fall back to the
    directive-stripped replicated compilation (handled by the caller)."""
    ctx = DistributionContext(sub, nprocs, params)
    grid = ctx.the_grid()
    if grid.size != nprocs:
        raise ValueError(
            f"processor grid {grid.name} has size {grid.size}, "
            f"but nprocs={nprocs}"
        )
    # Top-level statements outside any DO nest that touch distributed arrays
    # have no nest plan to carry their communication; the stripped program
    # (nothing distributed) executes them correctly on every rank.
    for s in sub.body:
        if isinstance(s, DoLoop):
            continue
        for ref in _stmt_array_refs(s):
            if ctx.is_distributed(ref.name):
                raise ValueError(
                    f"top-level statement touches distributed array {ref.name!r}"
                )
    merged = {**sub.symbols.parameter_values(), **params}
    with iset_budget(budget):
        cps_all, nest_plans, private_arrays, localized_arrays = analyze_program(
            sub, ctx, merged, sink=sink, budget=budget
        )
    degraded_nests = {
        idx
        for idx, (item, _) in enumerate(nest_plans)
        if any(
            cps_all.get(s.sid) is not None and cps_all[s.sid].source == "fallback"
            for s in walk_stmts([item])
            if isinstance(s, Assign)
        )
    }
    if degraded_nests and (private_arrays or localized_arrays):
        # NEW arrays are per-rank and LOCALIZE suppresses owner write-backs
        # (owners may hold stale data) — a replicated nest reading either
        # would see garbage.  Only the whole-program fallback is safe.
        raise ValueError(
            "degraded nest coexists with NEW/LOCALIZE arrays; "
            "replicated execution cannot read privatized data"
        )
    kernel = CompiledKernel(
        sub, ctx, merged, cps_all, nest_plans, nprocs, private_arrays,
        localized_arrays, backend=backend, sink=sink, lenient=True,
        degraded_nests=degraded_nests,
    )
    # Surface emission-time problems (unsupported statements, route binding)
    # now, while the whole-program fallback is still available.
    kernel.python_source("mpi")
    kernel.python_source("shmem")
    return kernel


def compile_kernel(
    source_or_sub: "str | Subroutine | Program",
    nprocs: int,
    params: Mapping[str, int] | None = None,
    verify: bool = False,
    backend: str = "vector",
    strict: bool = True,
    sink: "DiagnosticSink | None" = None,
    budget: "IsetBudget | None" = None,
) -> "CompiledKernel":
    """Run the full dHPF pipeline on a single program unit and build the
    executable SPMD kernel.

    ``backend`` selects the node-code emission strategy: ``"vector"``
    (default) lowers dependence-free innermost affine loops to NumPy slice
    assignments, falling back to per-element emission statement-by-statement
    whenever safety cannot be proven; ``"scalar"`` always emits per-element
    loops.  Both backends produce bitwise-identical arrays.

    ``strict=False`` selects the graceful-degradation pipeline: constructs
    the analyses cannot handle (non-affine subscripts, runtime trip counts,
    CALLs, pipelined communication, tripped iset budgets, ...) degrade the
    enclosing nest — or, when necessary, the whole program — to replicated
    execution instead of raising, each with an ``I-FALLBACK`` diagnostic on
    the kernel's :class:`~repro.diag.DiagnosticSink`.  On well-formed input
    lenient compilation never raises; ill-formed source still raises a
    single :class:`~repro.diag.CompileError` carrying *all* collected
    diagnostics.  Pass ``sink``/``budget`` to observe diagnostics and iset
    resource usage; fresh ones are created otherwise.

    With ``verify=True`` the static SPMD verifier (:mod:`repro.check`) runs
    over the compiled kernel; errors raise
    :class:`repro.check.VerificationError` and the full report is attached
    to the kernel as ``verify_report`` either way.

    Since PR 7 this is a thin wrapper over the staged pipeline in
    :mod:`repro.compile.pipeline`.  String sources are routed through the
    content-addressed plan cache (:mod:`repro.compile.cache`): a warm hit
    deserializes the compiled kernel and replays its recorded diagnostics
    into *sink* instead of re-running analysis, producing a
    bitwise-identical kernel.  Passing an explicit *budget* bypasses cache
    reads (the caller is observing analysis cost); ``Program``/
    ``Subroutine`` inputs and in-flight failures are never cached.
    """
    if backend not in ("vector", "scalar"):
        raise ValueError(f"unknown codegen backend {backend!r}")
    if sink is None:
        sink = DiagnosticSink(strict=strict)
    params = dict(params or {})

    from ..compile.cache import active_cache
    from ..compile.pipeline import build_kernel, cached_compile

    cache = active_cache() if isinstance(source_or_sub, str) else None
    if cache is not None:
        kernel = cached_compile(
            source_or_sub, nprocs, params, backend, sink, budget, cache
        )
    else:
        kernel = build_kernel(
            source_or_sub, nprocs, params, backend, sink, budget
        )
    if verify:
        from ..check import VerificationError, verify_kernel

        report = verify_kernel(kernel)
        kernel.verify_report = report
        if not report.ok:
            raise VerificationError(report)
    return kernel


# ---------------------------------------------------------------------------
# compiled kernel
# ---------------------------------------------------------------------------

@dataclass
class _Route:
    """Concrete element routing for one hoisted communication event."""

    array: str
    kind: str  # 'read' | 'writeback'
    #: (src_rank, dst_rank) -> ordered element list
    pairs: dict[tuple[int, int], list[tuple[int, ...]]]
    tag: int
    #: per-pair fancy-index arrays (lazy; keyed by (src, dst))
    _idx: dict = field(default_factory=dict, repr=False)

    def index_for(self, pair: tuple[int, int], arr: FortranArray) -> tuple:
        """numpy fancy-index tuple selecting this pair's elements of *arr*
        in the same order as the element list (bulk gather/scatter)."""
        idx = self._idx.get(pair)
        if idx is None:
            elems = self.pairs[pair]
            idx = tuple(
                np.fromiter((e[d] for e in elems), dtype=np.intp, count=len(elems))
                - arr.lower[d]
                for d in range(arr.data.ndim)
            )
            self._idx[pair] = idx
        return idx


def _box_cover(coords) -> tuple:
    """Exact cover of a set of integer coordinate tuples by axis-aligned
    boxes ``(a0, b0, a1, b1, ...)`` — per-level inclusive ``(lo, hi)``
    pairs, first coordinate first.

    Built recursively: group by the first coordinate, cover the remaining
    coordinates of each group, then merge maximal blocks of consecutive
    first-coordinate values with identical sub-covers — for block-
    distributed guards the cover is a single box.  Boxes come out in
    (first-block, sub-cover) order, which keeps every fixed-prefix row's
    runs in increasing order; vectorized statements with an innermost-
    carried anti dependence rely on this (see ``vectorize.plan_nest``)."""
    if not coords:
        return ()
    if len(coords[0]) == 1:
        vals = sorted({c[0] for c in coords})
        runs = []
        start = prev = vals[0]
        for v in vals[1:]:
            if v == prev + 1:
                prev = v
            else:
                runs.append((start, prev))
                start = prev = v
        runs.append((start, prev))
        return tuple(runs)
    groups: dict[int, list] = {}
    for c in coords:
        groups.setdefault(c[0], []).append(c[1:])
    subs = {v: _box_cover(rest) for v, rest in groups.items()}
    out: list = []
    a0 = a1 = None
    cur = None
    for v in sorted(subs):
        if cur == subs[v] and v == a1 + 1:
            a1 = v
        else:
            if cur is not None:
                out.extend((a0, a1) + sub for sub in cur)
            a0 = a1 = v
            cur = subs[v]
    out.extend((a0, a1) + sub for sub in cur)
    return tuple(out)


class Guards(dict):
    """Per-rank statement guards: ``sid -> frozenset(points) | None`` (None
    means unguarded).  Beyond the scalar backend's point-membership test,
    this serves the vector backend's *block* queries: exact covers of the
    admissible indices at one or more vectorized loop positions by
    contiguous runs/boxes, for fixed outer indices."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        self._covers: dict = {}

    def boxes(self, sid: int, tpl: tuple, *bounds):
        """Exact cover of the admissible points at the ``None`` positions
        of *tpl* (outermost vectorized loop first) by boxes
        ``(a0, b0, a1, b1, ...)`` — one inclusive ``(lo, hi)`` pair per
        position — clamped to *bounds* (the same pair layout).  Unguarded
        statements get the whole bounds box.  Covers are cached per
        ``(sid, positions)`` across queries; clamping an exact cover
        axis-by-axis keeps it exact."""
        bounds = tuple(int(v) for v in bounds)
        d = len(bounds) // 2
        for l in range(d):
            if bounds[2 * l + 1] < bounds[2 * l]:
                return ()
        pts = self.get(sid)
        if pts is None:
            return (bounds,)
        positions = []
        p = -1
        for _ in range(d):
            p = tpl.index(None, p + 1)
            positions.append(p)
        positions = tuple(positions)
        table = self._covers.get((sid, positions))
        if table is None:
            posset = set(positions)
            by_fixed: dict[tuple, list] = {}
            for pt in pts:
                fixed = tuple(v for i, v in enumerate(pt) if i not in posset)
                by_fixed.setdefault(fixed, []).append(
                    tuple(pt[i] for i in positions)
                )
            table = {f: _box_cover(cs) for f, cs in by_fixed.items()}
            self._covers[(sid, positions)] = table
        posset = set(positions)
        fixed = tuple(v for i, v in enumerate(tpl) if i not in posset)
        out = []
        for box in table.get(fixed, ()):
            clamped = []
            for l in range(d):
                a = max(box[2 * l], bounds[2 * l])
                b = min(box[2 * l + 1], bounds[2 * l + 1])
                if a > b:
                    break
                clamped += [a, b]
            else:
                out.append(tuple(clamped))
        return out

    def segments(self, sid: int, tpl: tuple, lo, hi):
        """Maximal runs ``(a, b)`` of admissible values at the single
        ``None`` position of *tpl*, clamped to ``[lo, hi]``."""
        return self.boxes(sid, tpl, lo, hi)

    def rects(self, sid: int, tpl: tuple, lo1, hi1, lo2, hi2):
        """Rectangle cover ``(a0, a1, b0, b1)`` of the two ``None``
        positions of *tpl* (outer first)."""
        return self.boxes(sid, tpl, lo1, hi1, lo2, hi2)


class CompiledKernel:
    """An executable SPMD kernel produced by :func:`compile_kernel`."""

    #: numpy namespace for generated vector code
    np = np

    # math namespace for generated code.  numpy's scalar ufunc paths are used
    # (not ``math.*``) so the scalar and vector backends evaluate
    # transcendentals through the same ufunc implementation — a prerequisite
    # for their bitwise-identical-arrays contract.
    class m:
        sqrt = staticmethod(np.sqrt)
        exp = staticmethod(np.exp)
        log = staticmethod(np.log)
        sin = staticmethod(np.sin)
        cos = staticmethod(np.cos)
        tan = staticmethod(np.tan)
        atan = staticmethod(np.arctan)

    def __init__(
        self,
        sub: Subroutine,
        ctx: DistributionContext,
        params: dict[str, int],
        cps: dict[int, StatementCP],
        nest_plans: list[tuple[DoLoop, CommPlan]],
        nprocs: int,
        private_arrays: "set[str] | None" = None,
        localized_arrays: "set[str] | None" = None,
        backend: str = "vector",
        sink: "DiagnosticSink | None" = None,
        lenient: bool = False,
        degraded_nests: "set[int] | None" = None,
    ):
        self.sub = sub
        self.ctx = ctx
        self.params = params
        self.cps = cps
        self.nest_plans = nest_plans
        self.nprocs = nprocs
        #: node-code emission strategy ("vector" | "scalar")
        self.backend = backend
        #: per-innermost-loop vectorization decisions, filled during emission
        #: (sid -> repro.codegen.vectorize.LoopReport)
        self.vector_report: dict[int, Any] = {}
        self._vector_plans: dict[int, Any] = {}
        #: NEW (privatizable) arrays: per-rank private in the shmem target
        self.private_arrays = set(private_arrays or ())
        #: LOCALIZE'd arrays: partially replicated, no comm (§4.2)
        self.localized_arrays = set(localized_arrays or ())
        #: filled in by compile_kernel(..., verify=True)
        self.verify_report = None
        #: structured diagnostics collected while building this kernel
        self.sink = sink
        #: True when built by the graceful-degradation (strict=False) path
        self.lenient = lenient
        #: indices into nest_plans whose statements run replicated (fallback)
        self.degraded_nests = set(degraded_nests or ())
        #: iset resource budget charged during analysis (set by compile_kernel)
        self.budget: "IsetBudget | None" = None
        self._dropped_sids: set[int] = set()
        self.grid = ctx.the_grid()
        if self.grid.size != nprocs:
            raise ValueError(f"grid size {self.grid.size} != nprocs {nprocs}")
        with profile_phase("routes"):
            self._routes: list[list[_Route]] = [
                self._build_routes(i, plan) for i, (_, plan) in enumerate(nest_plans)
            ]
        self._guard_cache: dict[int, Guards] = {}
        self._sources: dict[str, str] = {}
        self._fns: dict[str, Callable] = {}

    # -- pickling (plan-cache artifacts) ------------------------------------------
    def __getstate__(self):
        # exec'd node-program functions don't pickle; they rebuild on
        # demand from _sources, which round-trips verbatim — so a warm
        # kernel emits bitwise-identical node programs
        state = self.__dict__.copy()
        state["_fns"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    @property
    def diagnostics(self) -> list:
        """All structured diagnostics collected while compiling this kernel
        (empty for strict compilations that attached no sink)."""
        return list(self.sink.diagnostics) if self.sink is not None else []

    @property
    def fallback_diagnostics(self) -> list:
        """Just the ``I-FALLBACK`` degradation records."""
        return self.sink.fallbacks() if self.sink is not None else []

    # -- helpers exposed to generated code (the `K` object) -----------------------
    @staticmethod
    def fdiv(a, b):
        if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
            # Fortran integer division truncates toward zero
            q = a // b
            if q < 0 and q * b != a:
                q += 1
            return q
        return a / b

    # Fortran intrinsic semantics for negative operands (MOD keeps the sign
    # of the first argument; NINT rounds halves away from zero; SIGN
    # transfers the sign bit) — shared with the serial interpreter so the
    # reference and generated code agree bit-for-bit.
    fmod = staticmethod(fortran_mod)
    nint = staticmethod(fortran_nint)
    fsign = staticmethod(fortran_sign)

    @staticmethod
    def do_range(lo, hi, step=1):
        return range(int(lo), int(hi) + (1 if step > 0 else -1), int(step))

    @staticmethod
    def guard(G: dict, sid: int, point: tuple) -> bool:
        s = G.get(sid)
        return True if s is None else point in s

    # -- vector-backend runtime helpers ---------------------------------------
    @staticmethod
    def segments(G: "Guards", sid: int, tpl: tuple, lo, hi):
        """Contiguous admissible runs of the innermost index (see
        :meth:`Guards.segments`)."""
        return G.segments(sid, tpl, lo, hi)

    @staticmethod
    def rects(G: "Guards", sid: int, tpl: tuple, lo1, hi1, lo2, hi2):
        """Rectangle cover of the two vectorized index positions (see
        :meth:`Guards.rects`)."""
        return G.rects(sid, tpl, lo1, hi1, lo2, hi2)

    @staticmethod
    def boxes(G: "Guards", sid: int, tpl: tuple, *bounds):
        """Exact box cover of the vectorized index positions (see
        :meth:`Guards.boxes`)."""
        return G.boxes(sid, tpl, *bounds)

    #: read-only backing store for :meth:`arange` (grown on demand; shared
    #: across ranks, which is safe precisely because it is immutable)
    _arange_base = np.arange(0)

    @classmethod
    def arange(cls, lo, hi):
        """Inclusive Fortran-style index vector ``[lo..hi]``.

        Generated code only ever reads these (index vectors appear on the
        right-hand side), so non-negative ranges are served as views of one
        cached, write-protected base array instead of a fresh allocation
        per guard segment."""
        lo = int(lo)
        hi = int(hi)
        if lo < 0:
            return np.arange(lo, hi + 1)
        if hi >= cls._arange_base.size:
            base = np.arange(max(hi + 1, 2 * cls._arange_base.size, 64))
            base.setflags(write=False)
            CompiledKernel._arange_base = base
        return cls._arange_base[lo:hi + 1]

    @staticmethod
    def fsl(lo, hi, step=1):
        """Inclusive Fortran-space slice (``FortranArray.vget/vset`` shift
        start/stop by the declared lower bound)."""
        return slice(int(lo), int(hi) + 1, int(step))

    @staticmethod
    def vmat(value, n):
        """Materialize a vector: broadcast a scalar rhs to length *n*."""
        if isinstance(value, np.ndarray) and value.ndim:
            return value
        return np.full(n, value)

    @staticmethod
    def vdiv(a, b):
        """Elementwise ``/`` with Fortran integer-division semantics when
        both operands are integral (matches :meth:`fdiv` elementwise)."""

        def integral(x):
            if isinstance(x, np.ndarray):
                return x.dtype.kind in "iu"
            return isinstance(x, (int, np.integer))

        if integral(a) and integral(b):
            q = np.floor_divide(a, b)
            r = a - q * b
            return q + ((r != 0) & (q < 0))  # floor -> trunc where signs differ
        return a / b

    @staticmethod
    def vmod(a, b):
        """Elementwise Fortran MOD (sign of the first argument)."""

        def integral(x):
            if isinstance(x, np.ndarray):
                return x.dtype.kind in "iu"
            return isinstance(x, (int, np.integer))

        if integral(a) and integral(b):
            return a - b * CompiledKernel.vdiv(a, b)
        return np.fmod(a, b)

    @staticmethod
    def vnint(x):
        """Elementwise Fortran NINT (halves away from zero)."""
        return np.where(
            np.asarray(x) >= 0, np.floor(np.asarray(x) + 0.5), np.ceil(np.asarray(x) - 0.5)
        ).astype(np.int64)

    @staticmethod
    def vint(x):
        """Elementwise Fortran INT (truncation toward zero)."""
        return np.trunc(x).astype(np.int64)

    @staticmethod
    def vdbl(x):
        return np.asarray(x, dtype=np.float64)

    @staticmethod
    def vsign(a, b):
        """Elementwise Fortran SIGN; integer arguments keep integer type."""
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.dtype.kind in "iu" and b_arr.dtype.kind in "iu":
            return np.where(b_arr >= 0, np.abs(a_arr), -np.abs(a_arr))
        return np.copysign(np.abs(a_arr), b_arr)

    # -- guards ---------------------------------------------------------------
    def bind_guards(self, rank_id: int) -> Guards:
        """Per-statement concrete iteration sets for one rank (cached)."""
        if rank_id in self._guard_cache:
            return self._guard_cache[rank_id]
        coords = self.grid.delinearize(rank_id)
        pbind = {PDIM(g): c for g, c in enumerate(coords)}
        out = Guards()
        # statements under the same innermost loop whose CPs induce the same
        # data partition (cp_key, §5) admit identical iteration sets — share
        # one point enumeration (the dominant cost at class-W sizes)
        shared: dict[tuple, "frozenset | None"] = {}
        for root, _plan in self.nest_plans:
            nest = NestInfo(root, self.params)
            for stmt in walk_stmts([root]):
                if not isinstance(stmt, Assign):
                    continue
                scp = self.cps.get(stmt.sid)
                if scp is None or scp.cp.is_replicated:
                    out[stmt.sid] = None
                    continue
                key = None
                loops = nest.loops_of(stmt)
                if loops:
                    tkeys = [cp_key(t, self.ctx) for t in scp.cp.terms]
                    if all(k is not None for k in tkeys):
                        key = (loops[-1].sid, frozenset(tkeys))
                if key is not None and key in shared:
                    out[stmt.sid] = shared[key]
                    continue
                dims = nest.dims_of(stmt)
                bounds = nest.bounds_of(stmt)
                if bounds is None:
                    out[stmt.sid] = None
                    continue
                iters = cp_iteration_set(
                    scp.cp, dims, bounds.bind(self.params), self.ctx
                ).bind({**self.params, **pbind})
                out[stmt.sid] = frozenset(iters.points())
                if key is not None:
                    shared[key] = out[stmt.sid]
        self._guard_cache[rank_id] = out
        return out

    # -- communication routing -----------------------------------------------------
    def _build_routes(self, nest_idx: int, plan: CommPlan) -> list[_Route]:
        routes: list[_Route] = []
        for ei, ev in enumerate(plan.live_events()):
            if not ev.placement.hoisted:
                continue  # guarded at compile time already
            layout = self.ctx.layout(ev.array)
            assert layout is not None
            pairs: dict[tuple[int, int], list[tuple[int, ...]]] = {}
            for rank_id in range(self.nprocs):
                coords = self.grid.delinearize(rank_id)
                pbind = {PDIM(g): c for g, c in enumerate(coords)}
                pts = sorted(ev.data.bind({**self.params, **pbind}).points())
                for elem in pts:
                    owner = self.grid.linearize(layout.owner_coords_of(elem))
                    if owner == rank_id:
                        continue
                    if ev.kind == "read":
                        pairs.setdefault((owner, rank_id), []).append(elem)
                    else:  # writeback: the computing rank returns data to the owner
                        pairs.setdefault((rank_id, owner), []).append(elem)
            routes.append(_Route(ev.array, ev.kind, pairs, 1000 + nest_idx * 64 + ei))
        return routes

    def exec_comm(self, rank: Rank, A: Mapping[str, FortranArray], nest_idx: int, kind: str) -> None:
        """Execute the hoisted communication of one nest (generated code
        calls this before ['read'] and after ['writeback'] the nest)."""
        me = rank.rank
        for route in self._routes[nest_idx]:
            if route.kind != kind:
                continue
            arr = A[route.array]
            for (src, dst), elems in route.pairs.items():
                if src == me:
                    idx = route.index_for((src, dst), arr)
                    buf = np.ascontiguousarray(arr.data[idx], dtype=np.float64)
                    rank.send(dst, buf, tag=route.tag)
            for (src, dst), elems in route.pairs.items():
                if dst == me:
                    buf = rank.recv(src, tag=route.tag)
                    arr.data[route.index_for((src, dst), arr)] = buf

    # -- code generation -----------------------------------------------------------
    def python_source(self, target: str = "mpi") -> str:
        """The generated node program (real, exec-able Python).

        ``target`` selects dHPF's two back ends (§2: "node programs ...
        that use either MPI message-passing primitives or shared-memory
        communication"): ``"mpi"`` realizes the hoisted communication
        events as messages; ``"shmem"`` shares one address space across
        ranks and replaces each communication point with a barrier (data
        written by the owner is directly visible after synchronization).
        """
        if target not in ("mpi", "shmem"):
            raise ValueError(f"unknown codegen target {target!r}")
        if target in self._sources:
            return self._sources[target]
        self._loop_order = self._collect_loop_order()
        lines: list[str] = [
            f"# SPMD node program generated by dhpf-py for {self.sub.name}",
            f"# target {target}, backend {self.backend}, "
            f"grid {self.grid.shape}, params {self.params}",
            "def node_program(rank, A, S, K):",
            "    G = K.bind_guards(rank.rank)",
        ]
        nest_idx = 0
        for item in self.sub.body:
            if isinstance(item, DoLoop):
                degraded = nest_idx in self.degraded_nests
                if target == "mpi":
                    lines.append(f"    K.exec_comm(rank, A, {nest_idx}, 'read')")
                else:
                    lines.append(f"    rank.barrier(tag={6000 + nest_idx})")
                if degraded and target == "shmem":
                    # Replicated fallback nests may read-modify-write; with a
                    # shared address space every rank re-applying the update
                    # would double-count, so rank 0 computes for everyone
                    # (visible to all after the post-nest barrier).
                    lines.append("    if rank.rank == 0:")
                    self._emit_stmt(item, lines, indent=2, locals_=set())
                else:
                    self._emit_stmt(item, lines, indent=1, locals_=set())
                if target == "mpi":
                    lines.append(f"    K.exec_comm(rank, A, {nest_idx}, 'writeback')")
                else:
                    lines.append(f"    rank.barrier(tag={6100 + nest_idx})")
                nest_idx += 1
            else:
                self._emit_stmt(item, lines, indent=1, locals_=set())
        lines.append("    return A")
        self._sources[target] = "\n".join(lines) + "\n"
        return self._sources[target]

    def _emit_stmt(self, s: Stmt, lines: list[str], indent: int, locals_: set[str]) -> None:
        pad = "    " * indent
        if isinstance(s, Assign):
            rhs = emit_expr(s.rhs, locals_)
            target = emit_assign_target(s.lhs, rhs, locals_)
            scp = self.cps.get(s.sid)
            if scp is not None and not scp.cp.is_replicated and locals_:
                point = ", ".join(sorted_locals(locals_, self._loop_order))
                lines.append(f"{pad}if K.guard(G, {s.sid}, ({point},)):")
                lines.append(f"{pad}    {target}")
            else:
                lines.append(f"{pad}{target}")
            return
        if isinstance(s, DoLoop):
            if self.backend == "vector":
                from .vectorize import try_emit_vector_loop

                if try_emit_vector_loop(self, s, lines, indent, locals_):
                    return
            lo = emit_expr(s.lo, locals_)
            hi = emit_expr(s.hi, locals_)
            step = emit_expr(s.step, locals_)
            lines.append(f"{pad}for {s.var} in K.do_range({lo}, {hi}, {step}):")
            inner = set(locals_) | {s.var}
            if not s.body:
                lines.append(f"{pad}    pass")
            for c in s.body:
                self._emit_stmt(c, lines, indent + 1, inner)
            return
        if isinstance(s, IfThen):
            lines.append(f"{pad}if {emit_expr(s.cond, locals_)}:")
            if not s.then_body:
                lines.append(f"{pad}    pass")
            for c in s.then_body:
                self._emit_stmt(c, lines, indent + 1, locals_)
            if s.else_body:
                lines.append(f"{pad}else:")
                for c in s.else_body:
                    self._emit_stmt(c, lines, indent + 1, locals_)
            return
        if isinstance(s, (Continue, Return)):
            lines.append(f"{pad}pass")
            return
        if self.lenient:
            # Side-effect-free from the arrays' point of view (PRINT and
            # friends): drop from generated code, once per statement.
            if self.sink is not None and s.sid not in self._dropped_sids:
                self._dropped_sids.add(s.sid)
                self.sink.fallback(
                    f"{type(s).__name__} dropped from generated code",
                    pass_name="codegen",
                    stmt_sid=s.sid,
                )
            lines.append(f"{pad}pass")
            return
        raise CodegenUnsupported(f"cannot emit {type(s).__name__}")

    _loop_order: list[str]

    # -- execution ------------------------------------------------------------------
    def node_program(self, target: str = "mpi") -> Callable:
        """Compile (exec) the generated source for one back end."""
        if target not in self._fns:
            src = self.python_source(target)
            ns: dict[str, Any] = {}
            exec(compile(src, f"<dhpf:{self.sub.name}:{target}>", "exec"), ns)
            self._fns[target] = ns["node_program"]
        return self._fns[target]

    def _collect_loop_order(self) -> list[str]:
        order: list[str] = []
        for s in walk_stmts(self.sub.body):
            if isinstance(s, DoLoop) and s.var not in order:
                order.append(s.var)
        return order

    def make_arrays(self) -> dict[str, FortranArray]:
        """Fresh full-shape arrays for one rank (valid only where owned or
        received — the compiler's 'overlap everything' simplification)."""
        out: dict[str, FortranArray] = {}
        for decl in self.sub.symbols.all():
            if decl.is_array:
                out[decl.name.lower()] = FortranArray.from_decl(decl, self.params)
        return out

    def run(
        self,
        scalars: Mapping[str, Any],
        init: Callable[[int, dict[str, FortranArray]], None] | None = None,
        vm: VirtualMachine | None = None,
        executor: str = "virtual",
        timeout: float | None = None,
    ) -> list[dict[str, FortranArray]]:
        """Execute on all ranks of a VirtualMachine; returns per-rank arrays.

        ``init(rank_id, arrays)`` seeds input data (every rank must seed at
        least its owned elements; seeding everything replicates the serial
        initial state, which is the common test setup).

        ``executor="process"`` runs the same node program on supervised OS
        processes instead (:func:`repro.runtime.procexec.run_kernel`) —
        bitwise-identical results, real parallelism.
        """
        if executor == "process":
            from ..runtime import procexec

            return procexec.run_kernel(
                self, scalars, init=init, target="mpi", timeout=timeout
            )
        fn = self.node_program()
        vm = vm or VirtualMachine(self.nprocs, record_trace=False)
        kernel = self

        def node(rank: Rank):
            A = kernel.make_arrays()
            if init is not None:
                init(rank.rank, A)
            S = dict(scalars)
            for k, v in kernel.params.items():
                S.setdefault(k, v)
            fn(rank, A, S, kernel)
            return A

        return vm.run(node)

    def run_shmem(
        self,
        scalars: Mapping[str, Any],
        init: Callable[[dict[str, FortranArray]], None] | None = None,
        vm: VirtualMachine | None = None,
        executor: str = "virtual",
        timeout: float | None = None,
    ) -> dict[str, FortranArray]:
        """Execute the shared-memory back end: one shared array set, ranks
        as threads, barriers at the points where the MPI target would
        communicate.  Returns the shared arrays.

        ``init(arrays)`` seeds the single shared address space.  Safe by
        construction: within a nest the CP guards make cross-rank writes
        disjoint (partial replication writes identical values), and the
        generated barriers order producer nests before consumer nests.

        ``executor="process"`` maps the arrays onto
        ``multiprocessing.shared_memory`` segments and runs one real OS
        process per rank (:func:`repro.runtime.procexec.run_kernel`).
        """
        if executor == "process":
            from ..runtime import procexec

            return procexec.run_kernel(
                self, scalars, init=init, target="shmem", timeout=timeout
            )
        from ..runtime.model import MachineModel

        fn = self.node_program("shmem")
        if vm is None:
            # SMP-flavored model: sync via very-low-latency "messages"
            smp = MachineModel("smp", flop_time=1e-9, alpha=2e-6, beta=1 / 300e6)
            vm = VirtualMachine(self.nprocs, smp, record_trace=False)
        shared = self.make_arrays()
        if init is not None:
            init(shared)
        kernel = self

        def node(rank: Rank):
            # privatizable (NEW) temporaries get per-rank storage — their
            # HPF semantics; everything else is the shared address space
            A = dict(shared)
            for name in kernel.private_arrays:
                if name in A:
                    A[name] = FortranArray.from_decl(
                        kernel.sub.symbols.require(name), kernel.params
                    )
            S = dict(scalars)
            for k, v in kernel.params.items():
                S.setdefault(k, v)
            fn(rank, A, S, kernel)
            return None

        vm.run(node)
        return shared


def sorted_locals(locals_: set[str], order: list[str]) -> list[str]:
    """Loop variables in nesting order (guard tuple layout)."""
    return [v for v in order if v in locals_]
