"""The SPMD compiler driver and the generated-code runtime library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..comm import CommAnalyzer, CommPlan
from ..cp.loopdist import CPGrouper
from ..cp.localize import propagate_localize_cps
from ..cp.model import cp_iteration_set, cp_key
from ..cp.nest import NestInfo
from ..cp.privatizable import propagate_new_cps
from ..cp.select import CPSelector, StatementCP
from ..distrib.layout import DistributionContext, PDIM
from ..frontend import parse_source
from ..ir.interp import FortranArray, fortran_mod, fortran_nint, fortran_sign
from ..ir.program import Subroutine
from ..ir.stmt import Assign, CallStmt, Continue, DoLoop, IfThen, Return, Stmt
from ..ir.visit import walk_stmts
from ..runtime.sim import Rank, VirtualMachine
from .pyemit import emit_assign_target, emit_expr


class CodegenUnsupported(Exception):
    """The kernel needs a feature the code generator does not implement
    (pipelined communication, CALL statements)."""


# ---------------------------------------------------------------------------
# compile driver
# ---------------------------------------------------------------------------

def analyze_program(
    sub: Subroutine,
    ctx: DistributionContext,
    merged: Mapping[str, int],
) -> "tuple[dict[int, StatementCP], list[tuple[DoLoop, CommPlan]], set[str], set[str]]":
    """Run the dHPF analysis pipeline (CP selection, NEW/LOCALIZE
    propagation, comm-sensitive grouping, communication analysis) on every
    top-level nest of *sub*.

    Returns ``(cps, nest_plans, private_arrays, localized_arrays)``.  This
    is the code-generation-free front half of :func:`compile_kernel`; the
    static verifier (:mod:`repro.check`) uses it directly so that kernels
    the code generator rejects (pipelined communication, §5) can still be
    verified.
    """
    merged = dict(merged)
    cps_all: dict[int, StatementCP] = {}
    nest_plans: list[tuple[DoLoop, CommPlan]] = []
    private_arrays: set[str] = set()
    localized_arrays: set[str] = set()
    sel = CPSelector(ctx, eval_params=merged)
    grouper = CPGrouper(ctx, sel)
    for item in sub.body:
        if not isinstance(item, DoLoop):
            continue
        cps = sel.select(item, merged)
        # NEW anywhere in this nest: propagate across the whole nest (the
        # paper's privatization scope is the enclosing parallel loop; uses
        # live in sibling loops of the definition)
        new_vars: list[str] = []
        for loop in walk_stmts([item]):
            if isinstance(loop, DoLoop) and loop.directive:
                new_vars.extend(loop.directive.new_vars)
        if new_vars:
            private_arrays |= {v.lower() for v in new_vars}
            propagate_new_cps(item, new_vars, cps, NestInfo(item, merged), ctx)
        # LOCALIZE scope
        if item.directive and item.directive.localize_vars:
            localized_arrays |= {v.lower() for v in item.directive.localize_vars}
            propagate_localize_cps(item, item.directive.localize_vars, cps, ctx, merged)
        # communication-sensitive grouping for the remaining local choices
        res = grouper.group(item, cps=cps, params=merged)
        cps = res.cps
        no_comm: set[str] = set()
        for loop in walk_stmts([item]):
            if isinstance(loop, DoLoop) and loop.directive:
                no_comm |= {v.lower() for v in loop.directive.new_vars}
                no_comm |= {v.lower() for v in loop.directive.localize_vars}
        plan = CommAnalyzer(item, cps, ctx, merged, exclude_arrays=no_comm).analyze()
        cps_all.update(cps)
        nest_plans.append((item, plan))
    return cps_all, nest_plans, private_arrays, localized_arrays


def compile_kernel(
    source_or_sub: "str | Subroutine",
    nprocs: int,
    params: Mapping[str, int] | None = None,
    verify: bool = False,
    backend: str = "vector",
) -> "CompiledKernel":
    """Run the full dHPF pipeline on a single program unit and build the
    executable SPMD kernel.

    ``backend`` selects the node-code emission strategy: ``"vector"``
    (default) lowers dependence-free innermost affine loops to NumPy slice
    assignments, falling back to per-element emission statement-by-statement
    whenever safety cannot be proven; ``"scalar"`` always emits per-element
    loops.  Both backends produce bitwise-identical arrays.

    With ``verify=True`` the static SPMD verifier (:mod:`repro.check`) runs
    over the compiled kernel; errors raise
    :class:`repro.check.VerificationError` and the full report is attached
    to the kernel as ``verify_report`` either way.
    """
    if backend not in ("vector", "scalar"):
        raise ValueError(f"unknown codegen backend {backend!r}")
    if isinstance(source_or_sub, str):
        prog = parse_source(source_or_sub)
        if len(prog.units) != 1:
            raise CodegenUnsupported(
                "compile_kernel takes a single unit; interprocedural kernels "
                "are analyzed by repro.cp.interproc"
            )
        sub = next(iter(prog.units.values()))
    else:
        sub = source_or_sub
    params = dict(params or {})
    ctx = DistributionContext(sub, nprocs, params)
    merged = {**sub.symbols.parameter_values(), **params}

    for s in walk_stmts(sub.body):
        if isinstance(s, CallStmt):
            raise CodegenUnsupported("CALL statements are not code-generated")

    cps_all, nest_plans, private_arrays, localized_arrays = analyze_program(
        sub, ctx, merged
    )
    for _, plan in nest_plans:
        for ev in plan.live_events():
            if ev.placement.pipelined:
                raise CodegenUnsupported(
                    f"pipelined communication for array {ev.array!r} "
                    "(wavefront kernels are executed by repro.parallel.dhpf)"
                )
    kernel = CompiledKernel(
        sub, ctx, merged, cps_all, nest_plans, nprocs, private_arrays,
        localized_arrays, backend=backend,
    )
    if verify:
        from ..check import VerificationError, verify_kernel

        report = verify_kernel(kernel)
        kernel.verify_report = report
        if not report.ok:
            raise VerificationError(report)
    return kernel


# ---------------------------------------------------------------------------
# compiled kernel
# ---------------------------------------------------------------------------

@dataclass
class _Route:
    """Concrete element routing for one hoisted communication event."""

    array: str
    kind: str  # 'read' | 'writeback'
    #: (src_rank, dst_rank) -> ordered element list
    pairs: dict[tuple[int, int], list[tuple[int, ...]]]
    tag: int
    #: per-pair fancy-index arrays (lazy; keyed by (src, dst))
    _idx: dict = field(default_factory=dict, repr=False)

    def index_for(self, pair: tuple[int, int], arr: FortranArray) -> tuple:
        """numpy fancy-index tuple selecting this pair's elements of *arr*
        in the same order as the element list (bulk gather/scatter)."""
        idx = self._idx.get(pair)
        if idx is None:
            elems = self.pairs[pair]
            idx = tuple(
                np.fromiter((e[d] for e in elems), dtype=np.intp, count=len(elems))
                - arr.lower[d]
                for d in range(arr.data.ndim)
            )
            self._idx[pair] = idx
        return idx


def _box_cover(coords) -> tuple:
    """Exact cover of a set of integer coordinate tuples by axis-aligned
    boxes ``(a0, b0, a1, b1, ...)`` — per-level inclusive ``(lo, hi)``
    pairs, first coordinate first.

    Built recursively: group by the first coordinate, cover the remaining
    coordinates of each group, then merge maximal blocks of consecutive
    first-coordinate values with identical sub-covers — for block-
    distributed guards the cover is a single box.  Boxes come out in
    (first-block, sub-cover) order, which keeps every fixed-prefix row's
    runs in increasing order; vectorized statements with an innermost-
    carried anti dependence rely on this (see ``vectorize.plan_nest``)."""
    if not coords:
        return ()
    if len(coords[0]) == 1:
        vals = sorted({c[0] for c in coords})
        runs = []
        start = prev = vals[0]
        for v in vals[1:]:
            if v == prev + 1:
                prev = v
            else:
                runs.append((start, prev))
                start = prev = v
        runs.append((start, prev))
        return tuple(runs)
    groups: dict[int, list] = {}
    for c in coords:
        groups.setdefault(c[0], []).append(c[1:])
    subs = {v: _box_cover(rest) for v, rest in groups.items()}
    out: list = []
    a0 = a1 = None
    cur = None
    for v in sorted(subs):
        if cur == subs[v] and v == a1 + 1:
            a1 = v
        else:
            if cur is not None:
                out.extend((a0, a1) + sub for sub in cur)
            a0 = a1 = v
            cur = subs[v]
    out.extend((a0, a1) + sub for sub in cur)
    return tuple(out)


class Guards(dict):
    """Per-rank statement guards: ``sid -> frozenset(points) | None`` (None
    means unguarded).  Beyond the scalar backend's point-membership test,
    this serves the vector backend's *block* queries: exact covers of the
    admissible indices at one or more vectorized loop positions by
    contiguous runs/boxes, for fixed outer indices."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        self._covers: dict = {}

    def boxes(self, sid: int, tpl: tuple, *bounds):
        """Exact cover of the admissible points at the ``None`` positions
        of *tpl* (outermost vectorized loop first) by boxes
        ``(a0, b0, a1, b1, ...)`` — one inclusive ``(lo, hi)`` pair per
        position — clamped to *bounds* (the same pair layout).  Unguarded
        statements get the whole bounds box.  Covers are cached per
        ``(sid, positions)`` across queries; clamping an exact cover
        axis-by-axis keeps it exact."""
        bounds = tuple(int(v) for v in bounds)
        d = len(bounds) // 2
        for l in range(d):
            if bounds[2 * l + 1] < bounds[2 * l]:
                return ()
        pts = self.get(sid)
        if pts is None:
            return (bounds,)
        positions = []
        p = -1
        for _ in range(d):
            p = tpl.index(None, p + 1)
            positions.append(p)
        positions = tuple(positions)
        table = self._covers.get((sid, positions))
        if table is None:
            posset = set(positions)
            by_fixed: dict[tuple, list] = {}
            for pt in pts:
                fixed = tuple(v for i, v in enumerate(pt) if i not in posset)
                by_fixed.setdefault(fixed, []).append(
                    tuple(pt[i] for i in positions)
                )
            table = {f: _box_cover(cs) for f, cs in by_fixed.items()}
            self._covers[(sid, positions)] = table
        posset = set(positions)
        fixed = tuple(v for i, v in enumerate(tpl) if i not in posset)
        out = []
        for box in table.get(fixed, ()):
            clamped = []
            for l in range(d):
                a = max(box[2 * l], bounds[2 * l])
                b = min(box[2 * l + 1], bounds[2 * l + 1])
                if a > b:
                    break
                clamped += [a, b]
            else:
                out.append(tuple(clamped))
        return out

    def segments(self, sid: int, tpl: tuple, lo, hi):
        """Maximal runs ``(a, b)`` of admissible values at the single
        ``None`` position of *tpl*, clamped to ``[lo, hi]``."""
        return self.boxes(sid, tpl, lo, hi)

    def rects(self, sid: int, tpl: tuple, lo1, hi1, lo2, hi2):
        """Rectangle cover ``(a0, a1, b0, b1)`` of the two ``None``
        positions of *tpl* (outer first)."""
        return self.boxes(sid, tpl, lo1, hi1, lo2, hi2)


class CompiledKernel:
    """An executable SPMD kernel produced by :func:`compile_kernel`."""

    #: numpy namespace for generated vector code
    np = np

    # math namespace for generated code.  numpy's scalar ufunc paths are used
    # (not ``math.*``) so the scalar and vector backends evaluate
    # transcendentals through the same ufunc implementation — a prerequisite
    # for their bitwise-identical-arrays contract.
    class m:
        sqrt = staticmethod(np.sqrt)
        exp = staticmethod(np.exp)
        log = staticmethod(np.log)
        sin = staticmethod(np.sin)
        cos = staticmethod(np.cos)
        tan = staticmethod(np.tan)
        atan = staticmethod(np.arctan)

    def __init__(
        self,
        sub: Subroutine,
        ctx: DistributionContext,
        params: dict[str, int],
        cps: dict[int, StatementCP],
        nest_plans: list[tuple[DoLoop, CommPlan]],
        nprocs: int,
        private_arrays: "set[str] | None" = None,
        localized_arrays: "set[str] | None" = None,
        backend: str = "vector",
    ):
        self.sub = sub
        self.ctx = ctx
        self.params = params
        self.cps = cps
        self.nest_plans = nest_plans
        self.nprocs = nprocs
        #: node-code emission strategy ("vector" | "scalar")
        self.backend = backend
        #: per-innermost-loop vectorization decisions, filled during emission
        #: (sid -> repro.codegen.vectorize.LoopReport)
        self.vector_report: dict[int, Any] = {}
        self._vector_plans: dict[int, Any] = {}
        #: NEW (privatizable) arrays: per-rank private in the shmem target
        self.private_arrays = set(private_arrays or ())
        #: LOCALIZE'd arrays: partially replicated, no comm (§4.2)
        self.localized_arrays = set(localized_arrays or ())
        #: filled in by compile_kernel(..., verify=True)
        self.verify_report = None
        self.grid = ctx.the_grid()
        if self.grid.size != nprocs:
            raise ValueError(f"grid size {self.grid.size} != nprocs {nprocs}")
        self._routes: list[list[_Route]] = [
            self._build_routes(i, plan) for i, (_, plan) in enumerate(nest_plans)
        ]
        self._guard_cache: dict[int, Guards] = {}
        self._sources: dict[str, str] = {}
        self._fns: dict[str, Callable] = {}

    # -- helpers exposed to generated code (the `K` object) -----------------------
    @staticmethod
    def fdiv(a, b):
        if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
            # Fortran integer division truncates toward zero
            q = a // b
            if q < 0 and q * b != a:
                q += 1
            return q
        return a / b

    # Fortran intrinsic semantics for negative operands (MOD keeps the sign
    # of the first argument; NINT rounds halves away from zero; SIGN
    # transfers the sign bit) — shared with the serial interpreter so the
    # reference and generated code agree bit-for-bit.
    fmod = staticmethod(fortran_mod)
    nint = staticmethod(fortran_nint)
    fsign = staticmethod(fortran_sign)

    @staticmethod
    def do_range(lo, hi, step=1):
        return range(int(lo), int(hi) + (1 if step > 0 else -1), int(step))

    @staticmethod
    def guard(G: dict, sid: int, point: tuple) -> bool:
        s = G.get(sid)
        return True if s is None else point in s

    # -- vector-backend runtime helpers ---------------------------------------
    @staticmethod
    def segments(G: "Guards", sid: int, tpl: tuple, lo, hi):
        """Contiguous admissible runs of the innermost index (see
        :meth:`Guards.segments`)."""
        return G.segments(sid, tpl, lo, hi)

    @staticmethod
    def rects(G: "Guards", sid: int, tpl: tuple, lo1, hi1, lo2, hi2):
        """Rectangle cover of the two vectorized index positions (see
        :meth:`Guards.rects`)."""
        return G.rects(sid, tpl, lo1, hi1, lo2, hi2)

    @staticmethod
    def boxes(G: "Guards", sid: int, tpl: tuple, *bounds):
        """Exact box cover of the vectorized index positions (see
        :meth:`Guards.boxes`)."""
        return G.boxes(sid, tpl, *bounds)

    #: read-only backing store for :meth:`arange` (grown on demand; shared
    #: across ranks, which is safe precisely because it is immutable)
    _arange_base = np.arange(0)

    @classmethod
    def arange(cls, lo, hi):
        """Inclusive Fortran-style index vector ``[lo..hi]``.

        Generated code only ever reads these (index vectors appear on the
        right-hand side), so non-negative ranges are served as views of one
        cached, write-protected base array instead of a fresh allocation
        per guard segment."""
        lo = int(lo)
        hi = int(hi)
        if lo < 0:
            return np.arange(lo, hi + 1)
        if hi >= cls._arange_base.size:
            base = np.arange(max(hi + 1, 2 * cls._arange_base.size, 64))
            base.setflags(write=False)
            CompiledKernel._arange_base = base
        return cls._arange_base[lo:hi + 1]

    @staticmethod
    def fsl(lo, hi, step=1):
        """Inclusive Fortran-space slice (``FortranArray.vget/vset`` shift
        start/stop by the declared lower bound)."""
        return slice(int(lo), int(hi) + 1, int(step))

    @staticmethod
    def vmat(value, n):
        """Materialize a vector: broadcast a scalar rhs to length *n*."""
        if isinstance(value, np.ndarray) and value.ndim:
            return value
        return np.full(n, value)

    @staticmethod
    def vdiv(a, b):
        """Elementwise ``/`` with Fortran integer-division semantics when
        both operands are integral (matches :meth:`fdiv` elementwise)."""

        def integral(x):
            if isinstance(x, np.ndarray):
                return x.dtype.kind in "iu"
            return isinstance(x, (int, np.integer))

        if integral(a) and integral(b):
            q = np.floor_divide(a, b)
            r = a - q * b
            return q + ((r != 0) & (q < 0))  # floor -> trunc where signs differ
        return a / b

    @staticmethod
    def vmod(a, b):
        """Elementwise Fortran MOD (sign of the first argument)."""

        def integral(x):
            if isinstance(x, np.ndarray):
                return x.dtype.kind in "iu"
            return isinstance(x, (int, np.integer))

        if integral(a) and integral(b):
            return a - b * CompiledKernel.vdiv(a, b)
        return np.fmod(a, b)

    @staticmethod
    def vnint(x):
        """Elementwise Fortran NINT (halves away from zero)."""
        return np.where(
            np.asarray(x) >= 0, np.floor(np.asarray(x) + 0.5), np.ceil(np.asarray(x) - 0.5)
        ).astype(np.int64)

    @staticmethod
    def vint(x):
        """Elementwise Fortran INT (truncation toward zero)."""
        return np.trunc(x).astype(np.int64)

    @staticmethod
    def vdbl(x):
        return np.asarray(x, dtype=np.float64)

    @staticmethod
    def vsign(a, b):
        """Elementwise Fortran SIGN; integer arguments keep integer type."""
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.dtype.kind in "iu" and b_arr.dtype.kind in "iu":
            return np.where(b_arr >= 0, np.abs(a_arr), -np.abs(a_arr))
        return np.copysign(np.abs(a_arr), b_arr)

    # -- guards ---------------------------------------------------------------
    def bind_guards(self, rank_id: int) -> Guards:
        """Per-statement concrete iteration sets for one rank (cached)."""
        if rank_id in self._guard_cache:
            return self._guard_cache[rank_id]
        coords = self.grid.delinearize(rank_id)
        pbind = {PDIM(g): c for g, c in enumerate(coords)}
        out = Guards()
        # statements under the same innermost loop whose CPs induce the same
        # data partition (cp_key, §5) admit identical iteration sets — share
        # one point enumeration (the dominant cost at class-W sizes)
        shared: dict[tuple, "frozenset | None"] = {}
        for root, _plan in self.nest_plans:
            nest = NestInfo(root, self.params)
            for stmt in walk_stmts([root]):
                if not isinstance(stmt, Assign):
                    continue
                scp = self.cps.get(stmt.sid)
                if scp is None or scp.cp.is_replicated:
                    out[stmt.sid] = None
                    continue
                key = None
                loops = nest.loops_of(stmt)
                if loops:
                    tkeys = [cp_key(t, self.ctx) for t in scp.cp.terms]
                    if all(k is not None for k in tkeys):
                        key = (loops[-1].sid, frozenset(tkeys))
                if key is not None and key in shared:
                    out[stmt.sid] = shared[key]
                    continue
                dims = nest.dims_of(stmt)
                bounds = nest.bounds_of(stmt)
                if bounds is None:
                    out[stmt.sid] = None
                    continue
                iters = cp_iteration_set(
                    scp.cp, dims, bounds.bind(self.params), self.ctx
                ).bind({**self.params, **pbind})
                out[stmt.sid] = frozenset(iters.points())
                if key is not None:
                    shared[key] = out[stmt.sid]
        self._guard_cache[rank_id] = out
        return out

    # -- communication routing -----------------------------------------------------
    def _build_routes(self, nest_idx: int, plan: CommPlan) -> list[_Route]:
        routes: list[_Route] = []
        for ei, ev in enumerate(plan.live_events()):
            if not ev.placement.hoisted:
                continue  # guarded at compile time already
            layout = self.ctx.layout(ev.array)
            assert layout is not None
            pairs: dict[tuple[int, int], list[tuple[int, ...]]] = {}
            for rank_id in range(self.nprocs):
                coords = self.grid.delinearize(rank_id)
                pbind = {PDIM(g): c for g, c in enumerate(coords)}
                pts = sorted(ev.data.bind({**self.params, **pbind}).points())
                for elem in pts:
                    owner = self.grid.linearize(layout.owner_coords_of(elem))
                    if owner == rank_id:
                        continue
                    if ev.kind == "read":
                        pairs.setdefault((owner, rank_id), []).append(elem)
                    else:  # writeback: the computing rank returns data to the owner
                        pairs.setdefault((rank_id, owner), []).append(elem)
            routes.append(_Route(ev.array, ev.kind, pairs, 1000 + nest_idx * 64 + ei))
        return routes

    def exec_comm(self, rank: Rank, A: Mapping[str, FortranArray], nest_idx: int, kind: str) -> None:
        """Execute the hoisted communication of one nest (generated code
        calls this before ['read'] and after ['writeback'] the nest)."""
        me = rank.rank
        for route in self._routes[nest_idx]:
            if route.kind != kind:
                continue
            arr = A[route.array]
            for (src, dst), elems in route.pairs.items():
                if src == me:
                    idx = route.index_for((src, dst), arr)
                    buf = np.ascontiguousarray(arr.data[idx], dtype=np.float64)
                    rank.send(dst, buf, tag=route.tag)
            for (src, dst), elems in route.pairs.items():
                if dst == me:
                    buf = rank.recv(src, tag=route.tag)
                    arr.data[route.index_for((src, dst), arr)] = buf

    # -- code generation -----------------------------------------------------------
    def python_source(self, target: str = "mpi") -> str:
        """The generated node program (real, exec-able Python).

        ``target`` selects dHPF's two back ends (§2: "node programs ...
        that use either MPI message-passing primitives or shared-memory
        communication"): ``"mpi"`` realizes the hoisted communication
        events as messages; ``"shmem"`` shares one address space across
        ranks and replaces each communication point with a barrier (data
        written by the owner is directly visible after synchronization).
        """
        if target not in ("mpi", "shmem"):
            raise ValueError(f"unknown codegen target {target!r}")
        if target in self._sources:
            return self._sources[target]
        self._loop_order = self._collect_loop_order()
        lines: list[str] = [
            f"# SPMD node program generated by dhpf-py for {self.sub.name}",
            f"# target {target}, backend {self.backend}, "
            f"grid {self.grid.shape}, params {self.params}",
            "def node_program(rank, A, S, K):",
            "    G = K.bind_guards(rank.rank)",
        ]
        nest_idx = 0
        for item in self.sub.body:
            if isinstance(item, DoLoop):
                if target == "mpi":
                    lines.append(f"    K.exec_comm(rank, A, {nest_idx}, 'read')")
                else:
                    lines.append(f"    rank.barrier(tag={6000 + nest_idx})")
                self._emit_stmt(item, lines, indent=1, locals_=set())
                if target == "mpi":
                    lines.append(f"    K.exec_comm(rank, A, {nest_idx}, 'writeback')")
                else:
                    lines.append(f"    rank.barrier(tag={6100 + nest_idx})")
                nest_idx += 1
            else:
                self._emit_stmt(item, lines, indent=1, locals_=set())
        lines.append("    return A")
        self._sources[target] = "\n".join(lines) + "\n"
        return self._sources[target]

    def _emit_stmt(self, s: Stmt, lines: list[str], indent: int, locals_: set[str]) -> None:
        pad = "    " * indent
        if isinstance(s, Assign):
            rhs = emit_expr(s.rhs, locals_)
            target = emit_assign_target(s.lhs, rhs, locals_)
            scp = self.cps.get(s.sid)
            if scp is not None and not scp.cp.is_replicated and locals_:
                point = ", ".join(sorted_locals(locals_, self._loop_order))
                lines.append(f"{pad}if K.guard(G, {s.sid}, ({point},)):")
                lines.append(f"{pad}    {target}")
            else:
                lines.append(f"{pad}{target}")
            return
        if isinstance(s, DoLoop):
            if self.backend == "vector":
                from .vectorize import try_emit_vector_loop

                if try_emit_vector_loop(self, s, lines, indent, locals_):
                    return
            lo = emit_expr(s.lo, locals_)
            hi = emit_expr(s.hi, locals_)
            step = emit_expr(s.step, locals_)
            lines.append(f"{pad}for {s.var} in K.do_range({lo}, {hi}, {step}):")
            inner = set(locals_) | {s.var}
            if not s.body:
                lines.append(f"{pad}    pass")
            for c in s.body:
                self._emit_stmt(c, lines, indent + 1, inner)
            return
        if isinstance(s, IfThen):
            lines.append(f"{pad}if {emit_expr(s.cond, locals_)}:")
            if not s.then_body:
                lines.append(f"{pad}    pass")
            for c in s.then_body:
                self._emit_stmt(c, lines, indent + 1, locals_)
            if s.else_body:
                lines.append(f"{pad}else:")
                for c in s.else_body:
                    self._emit_stmt(c, lines, indent + 1, locals_)
            return
        if isinstance(s, (Continue, Return)):
            lines.append(f"{pad}pass")
            return
        raise CodegenUnsupported(f"cannot emit {type(s).__name__}")

    _loop_order: list[str]

    # -- execution ------------------------------------------------------------------
    def node_program(self, target: str = "mpi") -> Callable:
        """Compile (exec) the generated source for one back end."""
        if target not in self._fns:
            src = self.python_source(target)
            ns: dict[str, Any] = {}
            exec(compile(src, f"<dhpf:{self.sub.name}:{target}>", "exec"), ns)
            self._fns[target] = ns["node_program"]
        return self._fns[target]

    def _collect_loop_order(self) -> list[str]:
        order: list[str] = []
        for s in walk_stmts(self.sub.body):
            if isinstance(s, DoLoop) and s.var not in order:
                order.append(s.var)
        return order

    def make_arrays(self) -> dict[str, FortranArray]:
        """Fresh full-shape arrays for one rank (valid only where owned or
        received — the compiler's 'overlap everything' simplification)."""
        out: dict[str, FortranArray] = {}
        for decl in self.sub.symbols.all():
            if decl.is_array:
                out[decl.name.lower()] = FortranArray.from_decl(decl, self.params)
        return out

    def run(
        self,
        scalars: Mapping[str, Any],
        init: Callable[[int, dict[str, FortranArray]], None] | None = None,
        vm: VirtualMachine | None = None,
    ) -> list[dict[str, FortranArray]]:
        """Execute on all ranks of a VirtualMachine; returns per-rank arrays.

        ``init(rank_id, arrays)`` seeds input data (every rank must seed at
        least its owned elements; seeding everything replicates the serial
        initial state, which is the common test setup).
        """
        fn = self.node_program()
        vm = vm or VirtualMachine(self.nprocs, record_trace=False)
        kernel = self

        def node(rank: Rank):
            A = kernel.make_arrays()
            if init is not None:
                init(rank.rank, A)
            S = dict(scalars)
            for k, v in kernel.params.items():
                S.setdefault(k, v)
            fn(rank, A, S, kernel)
            return A

        return vm.run(node)

    def run_shmem(
        self,
        scalars: Mapping[str, Any],
        init: Callable[[dict[str, FortranArray]], None] | None = None,
        vm: VirtualMachine | None = None,
    ) -> dict[str, FortranArray]:
        """Execute the shared-memory back end: one shared array set, ranks
        as threads, barriers at the points where the MPI target would
        communicate.  Returns the shared arrays.

        ``init(arrays)`` seeds the single shared address space.  Safe by
        construction: within a nest the CP guards make cross-rank writes
        disjoint (partial replication writes identical values), and the
        generated barriers order producer nests before consumer nests.
        """
        from ..runtime.model import MachineModel

        fn = self.node_program("shmem")
        if vm is None:
            # SMP-flavored model: sync via very-low-latency "messages"
            smp = MachineModel("smp", flop_time=1e-9, alpha=2e-6, beta=1 / 300e6)
            vm = VirtualMachine(self.nprocs, smp, record_trace=False)
        shared = self.make_arrays()
        if init is not None:
            init(shared)
        kernel = self

        def node(rank: Rank):
            # privatizable (NEW) temporaries get per-rank storage — their
            # HPF semantics; everything else is the shared address space
            A = dict(shared)
            for name in kernel.private_arrays:
                if name in A:
                    A[name] = FortranArray.from_decl(
                        kernel.sub.symbols.require(name), kernel.params
                    )
            S = dict(scalars)
            for k, v in kernel.params.items():
                S.setdefault(k, v)
            fn(rank, A, S, kernel)
            return None

        vm.run(node)
        return shared


def sorted_locals(locals_: set[str], order: list[str]) -> list[str]:
    """Loop variables in nesting order (guard tuple layout)."""
    return [v for v in order if v in locals_]
