"""Parallel SP/BT implementations on the simulated runtime — the three
versions compared in §8's tables:

- :mod:`.handmpi` — the hand-written MPI strategy: diagonal
  **multipartitioning** (perfect load balance in every sweep; modeled
  schedule — see DESIGN.md substitutions).
- :mod:`.dhpf` — the dHPF-compiled strategy: 2D BLOCK distribution over
  (y, z), LOCALIZE-style replicated reciprocal computation, local x solve,
  **coarse-grain pipelined** y/z wavefront solves with pipelined
  write-backs, and §7 availability elimination of the anti-pipeline read.
  Runs both *functionally* (real numpy, verified == serial) and as a work
  model.
- :mod:`.pgi` — the pghpf strategy: 1D BLOCK over z, local x/y solves, and
  a full **copy-transpose** before and after the z line solve.

:func:`run_parallel` is the single entry point used by examples and the
benchmark harness.
"""

from .api import RunResult, run_parallel
from .checkpoint import CheckpointConfig, CheckpointCorrupted, CheckpointStore
from .decomp import BlockDecomp1D, BlockDecomp2D

__all__ = [
    "RunResult",
    "run_parallel",
    "BlockDecomp1D",
    "BlockDecomp2D",
    "CheckpointConfig",
    "CheckpointCorrupted",
    "CheckpointStore",
]
