"""Unified entry point for the three parallel strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..runtime import Trace, VirtualMachine
from ..runtime.faults import FaultPlan
from ..runtime.model import MachineModel, TEST_MACHINE
from ..runtime.reliable import ReliableConfig
from .checkpoint import CheckpointConfig
from .decomp import BlockDecomp2D
from .dhpf import DhpfOptions, make_dhpf_node


@dataclass
class RunResult:
    """Outcome of one parallel run on the virtual machine."""

    bench: str
    strategy: str
    nprocs: int
    shape: tuple[int, int, int]
    niter: int
    time: float  # virtual makespan (seconds)
    trace: Optional[Trace]
    u: Optional[np.ndarray] = None  # assembled global field (functional mode)
    per_rank: list = field(default_factory=list)

    @property
    def checksum(self) -> Optional[float]:
        if self.u is None:
            return None
        return float(np.sum(np.abs(self.u)))


def _assemble(shape: tuple[int, int, int], results: list[dict]) -> np.ndarray:
    from ..nas import ops

    u = np.zeros(shape + (ops.NV,), dtype=np.float64)
    for r in results:
        own = r["u_own"]
        lo = r["lo"]
        u[
            lo[0] : lo[0] + own.shape[0],
            lo[1] : lo[1] + own.shape[1],
            lo[2] : lo[2] + own.shape[2],
        ] = own
    return u


def run_parallel(
    bench: str,
    strategy: str,
    nprocs: int,
    shape: tuple[int, int, int],
    niter: int,
    model: MachineModel = TEST_MACHINE,
    functional: bool = False,
    options: Any = None,
    record_trace: bool = True,
    faults: Optional[FaultPlan] = None,
    reliable: Optional[ReliableConfig] = None,
    checkpoint: Optional[CheckpointConfig] = None,
) -> RunResult:
    """Run one (benchmark, strategy) configuration on the virtual machine.

    bench: 'sp' | 'bt'; strategy: 'dhpf' | 'pgi' | 'handmpi'.
    ``functional=True`` computes real numpy data (small grids; result
    assembled into ``RunResult.u``); otherwise only the work model runs.

    Resilience knobs: ``faults`` injects a deterministic
    :class:`~repro.runtime.faults.FaultPlan`; ``reliable`` tunes the
    retransmission transport that masks its message faults; ``checkpoint``
    enables coordinated snapshot/restart for the dhpf and handmpi
    strategies (re-run with the same store after a
    :class:`~repro.runtime.faults.RankCrashed` to recover).
    """
    bench = bench.lower()
    strategy = strategy.lower()
    if bench not in ("sp", "bt"):
        raise ValueError(f"unknown benchmark {bench!r}")
    if checkpoint is not None and strategy == "pgi":
        raise ValueError(
            "checkpoint/restart supports the dhpf and handmpi strategies only"
        )

    vm = VirtualMachine(
        nprocs, model, record_trace=record_trace, faults=faults, reliable=reliable
    )
    if strategy == "dhpf":
        from ..distrib.grid import ProcessorGrid

        pgrid = ProcessorGrid.square_2d("procs", nprocs).shape
        node, _ = make_dhpf_node(
            bench, shape, niter, pgrid, options or DhpfOptions(), functional,
            checkpoint=checkpoint,
        )
        results = vm.run(node)
    elif strategy == "pgi":
        from .pgi import PgiOptions, make_pgi_node

        node, _ = make_pgi_node(
            bench, shape, niter, nprocs, options or PgiOptions.for_bench(bench), functional
        )
        results = vm.run(node)
    elif strategy == "handmpi":
        from .handmpi import HandMpiOptions, make_handmpi_node

        if functional:
            raise ValueError(
                "the multipartitioning baseline is schedule-modeled only "
                "(see DESIGN.md substitutions); use functional=False"
            )
        node, _ = make_handmpi_node(
            bench, shape, niter, nprocs, options or HandMpiOptions.for_bench(bench),
            checkpoint=checkpoint,
        )
        results = vm.run(node)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    time = max(r["t"] for r in results)
    u = _assemble(shape, results) if functional and "u_own" in results[0] else None
    return RunResult(bench, strategy, nprocs, shape, niter, time, vm.trace, u, results)
