"""Unified entry point for the three parallel strategies."""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..diag import CompileDiagnostic, I_FALLBACK, I_NOTRACE, Severity
from ..runtime import Trace, VirtualMachine
from ..runtime.faults import FaultPlan
from ..runtime.model import MachineModel, TEST_MACHINE
from ..runtime.procexec import (
    ExecutorTimeout,
    ExecutorUnavailable,
    ProcConfig,
    ProcessExecutor,
    ProcFault,
    WorkerCrashed,
    WorkerTimeout,
)
from ..runtime.reliable import ReliableConfig
from .checkpoint import CheckpointConfig
from .decomp import BlockDecomp2D
from .dhpf import DhpfOptions, make_dhpf_node


@dataclass
class RunResult:
    """Outcome of one parallel run (virtual machine or real processes)."""

    bench: str
    strategy: str
    nprocs: int
    shape: tuple[int, int, int]
    niter: int
    time: float  # virtual makespan (seconds)
    trace: Optional[Trace]
    u: Optional[np.ndarray] = None  # assembled global field (functional mode)
    per_rank: list = field(default_factory=list)
    executor: str = "virtual"  # executor that actually ran ("virtual" | "process")
    wall_time: float = 0.0  # host seconds spent executing
    restarts: int = 0  # supervised gang restarts consumed (process executor)
    diagnostics: list = field(default_factory=list)  # e.g. I-FALLBACK degradations

    @property
    def checksum(self) -> Optional[float]:
        if self.u is None:
            return None
        return float(np.sum(np.abs(self.u)))


def _assemble(shape: tuple[int, int, int], results: list[dict]) -> np.ndarray:
    from ..nas import ops

    u = np.zeros(shape + (ops.NV,), dtype=np.float64)
    for r in results:
        own = r["u_own"]
        lo = r["lo"]
        u[
            lo[0] : lo[0] + own.shape[0],
            lo[1] : lo[1] + own.shape[1],
            lo[2] : lo[2] + own.shape[2],
        ] = own
    return u


def run_parallel(
    bench: str,
    strategy: str,
    nprocs: int,
    shape: tuple[int, int, int],
    niter: int,
    model: MachineModel = TEST_MACHINE,
    functional: bool = False,
    options: Any = None,
    record_trace: bool = True,
    faults: Optional[FaultPlan] = None,
    reliable: Optional[ReliableConfig] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    executor: str = "virtual",
    timeout: Optional[float] = None,
    executor_config: Optional[ProcConfig] = None,
    proc_fault: Optional[ProcFault] = None,
) -> RunResult:
    """Run one (benchmark, strategy) configuration.

    bench: 'sp' | 'bt'; strategy: 'dhpf' | 'pgi' | 'handmpi'.
    ``functional=True`` computes real numpy data (small grids; result
    assembled into ``RunResult.u``); otherwise only the work model runs.

    ``executor`` selects where the node programs execute:

    - ``"virtual"`` (default) — the deterministic virtual machine with
      modeled time;
    - ``"process"`` — the supervised real-process backend
      (:mod:`repro.runtime.procexec`): one forked OS process per rank,
      heartbeat monitoring, typed crash/hang detection, bounded
      checkpoint-based restart.  If the backend is unavailable, crashes
      past its restart budget, or freezes, the run **degrades to the
      virtual machine** and records an ``I-FALLBACK`` diagnostic in
      ``RunResult.diagnostics`` (inspect ``RunResult.executor`` for what
      actually ran); an exception raised *by the node program* is
      deterministic and propagates directly — it is never re-run on the
      virtual machine.  The numerics are bitwise-identical either way.
      Event traces are a virtual-machine feature: with
      ``record_trace=True`` the process path returns ``trace=None`` and
      records an ``I-NOTRACE`` diagnostic.

    ``timeout`` is an overall wall-clock budget in host seconds covering
    both executors (typed :class:`~repro.runtime.procexec.ExecutorTimeout`
    on expiry — a timeout is an exhausted budget, so it never triggers
    restart or degradation).

    Resilience knobs: ``faults`` injects a deterministic
    :class:`~repro.runtime.faults.FaultPlan`; ``reliable`` tunes the
    retransmission transport that masks its message faults (both model
    *simulated* failures, so they require the virtual executor);
    ``checkpoint`` enables coordinated snapshot/restart for the dhpf and
    handmpi strategies; ``proc_fault`` injects one *real* fault
    (SIGKILL/SIGSTOP) into a live process gang — the chaos harness's
    process mode.
    """
    bench = bench.lower()
    strategy = strategy.lower()
    if bench not in ("sp", "bt"):
        raise ValueError(f"unknown benchmark {bench!r}")
    if executor not in ("virtual", "process"):
        raise ValueError(f"unknown executor {executor!r} (virtual | process)")
    if checkpoint is not None and strategy == "pgi":
        raise ValueError(
            "checkpoint/restart supports the dhpf and handmpi strategies only"
        )
    if executor == "process" and (faults is not None or reliable is not None):
        raise ValueError(
            "FaultPlan/ReliableConfig model simulated faults in virtual time "
            "and require executor='virtual'; real-process faults are injected "
            "via proc_fault (see repro.eval.chaos)"
        )
    if proc_fault is not None and executor != "process":
        raise ValueError("proc_fault requires executor='process'")

    if strategy == "dhpf":
        from ..distrib.grid import ProcessorGrid

        pgrid = ProcessorGrid.square_2d("procs", nprocs).shape
        node, _ = make_dhpf_node(
            bench, shape, niter, pgrid, options or DhpfOptions(), functional,
            checkpoint=checkpoint,
        )
    elif strategy == "pgi":
        from .pgi import PgiOptions, make_pgi_node

        node, _ = make_pgi_node(
            bench, shape, niter, nprocs, options or PgiOptions.for_bench(bench), functional
        )
    elif strategy == "handmpi":
        from .handmpi import HandMpiOptions, make_handmpi_node

        if functional:
            raise ValueError(
                "the multipartitioning baseline is schedule-modeled only "
                "(see DESIGN.md substitutions); use functional=False"
            )
        node, _ = make_handmpi_node(
            bench, shape, niter, nprocs, options or HandMpiOptions.for_bench(bench),
            checkpoint=checkpoint,
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    diagnostics: list[CompileDiagnostic] = []
    used = executor
    restarts = 0
    trace: Optional[Trace] = None
    results: Optional[list] = None
    wall0 = _time.monotonic()

    if executor == "process":
        try:
            ex = ProcessExecutor(nprocs, model, config=executor_config)
            results = ex.run(
                node, checkpoint=checkpoint, timeout=timeout, fault=proc_fault
            )
            restarts = ex.restarts
            if record_trace:
                # event traces are a virtual-machine feature; say so
                # instead of silently handing back trace=None
                diagnostics.append(CompileDiagnostic(
                    Severity.INFO, I_NOTRACE,
                    "record_trace=True is unavailable on the process "
                    "executor; RunResult.trace is None (use "
                    "executor='virtual' for event traces)",
                    pass_name="procexec",
                ))
        except ExecutorTimeout:
            raise  # an exhausted budget is final: no retry, no fallback
        except (ExecutorUnavailable, WorkerCrashed, WorkerTimeout) as exc:
            # infrastructure failure — backend unavailable, crashed past
            # its restart budget, or frozen: degrade to the deterministic
            # virtual machine and say so with a structured diagnostic.
            # A plain ExecutorError (the node program's own exception) is
            # deterministic and propagates instead: re-running it on the
            # virtual machine would only fail again, slower, while
            # misattributing an application bug to executor degradation.
            diagnostics.append(CompileDiagnostic(
                Severity.INFO, I_FALLBACK,
                f"process executor degraded to the virtual machine after "
                f"{type(exc).__name__}: {exc}",
                pass_name="procexec",
            ))
            used = "virtual"

    if results is None:
        remaining = None
        if timeout is not None:
            remaining = timeout - (_time.monotonic() - wall0)
            if remaining <= 0:
                raise ExecutorTimeout(
                    f"wall-clock budget of {timeout:.3g}s exhausted before the "
                    f"virtual-machine fallback could start"
                )
        vm = VirtualMachine(
            nprocs, model, record_trace=record_trace, faults=faults,
            reliable=reliable,
        )
        results = vm.run(node, timeout=remaining)
        trace = vm.trace

    wall = _time.monotonic() - wall0
    time = max(r["t"] for r in results)
    u = _assemble(shape, results) if functional and "u_own" in results[0] else None
    return RunResult(
        bench, strategy, nprocs, shape, niter, time, trace, u, results,
        executor=used, wall_time=wall, restarts=restarts,
        diagnostics=diagnostics,
    )
