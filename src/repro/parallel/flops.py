"""Per-phase floating-point work constants (shared by the work models).

Per-grid-point costs consistent with published NPB operation counts:
SP ~ 900 flops/point/iteration, BT ~ 4200.  The split across phases follows
the NPB profile (solves dominate; BT's 5x5 block algebra is ~6x an SP
scalar solve).  These drive the virtual clock; the *ratios* between
versions (what the paper's tables compare) come from the schedules, not
from these absolute constants.
"""

RHS_PER_POINT = 260.0  # compute_rhs (incl. reciprocal arrays + dissipation)
RECIP_PER_POINT = 30.0  # the LOCALIZE'd reciprocal computation alone
SP_SWEEP_PER_POINT = 220.0  # one SP directional sweep (3 systems)
SP_BUILD_PER_POINT = 60.0  # lhs band construction share of a sweep
# calibrated to the paper's measured BT/SP per-iteration runtime ratio on
# the SP2 (xlf sustains a higher flop rate on BT's dense 5x5 block algebra
# than the published ~4200 flops/point would suggest at SP's rate)
BT_SWEEP_PER_POINT = 800.0  # one BT directional sweep (block algebra)
BT_BUILD_PER_POINT = 150.0  # block (jacobian) construction share
ADD_PER_POINT = 10.0

#: elements per boundary-row transfer in the SP pipelined solve:
#: 2 rows x (5 lhs bands + ncomps rhs components)
SP_PIPE_ROW_ELEMS = 2 * (5 + 5)
#: BT: one row of C blocks (5x5) + rhs (5)
BT_PIPE_ROW_ELEMS = 25 + 5


def sp_step_flops(points: float) -> float:
    """Total modeled flops of one SP timestep over *points* grid points."""
    return points * (RHS_PER_POINT + 3 * SP_SWEEP_PER_POINT + ADD_PER_POINT)


def bt_step_flops(points: float) -> float:
    """Total modeled flops of one BT timestep over *points* grid points."""
    return points * (RHS_PER_POINT + 3 * BT_SWEEP_PER_POINT + ADD_PER_POINT)
