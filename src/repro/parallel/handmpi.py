"""Hand-written MPI strategy: diagonal multipartitioning (schedule model).

The NPB2.3b2 hand-coded SP/BT use the skewed-block *multipartitioning*
distribution (§3, §8): with P = q^2 processors each rank owns q diagonal
cells of the q^3 cell grid, so every rank has exactly one cell to work on
at *every* step of a bi-directional sweep along *any* dimension — near
perfect load balance with coarse-grain communication, and the reason the
hand-coded versions scale so well (Figures 8.1 / 8.3 show solid compute
bars with thin communication bands).

We model the schedule (copy_faces ghost exchange, per-sweep-step cell
compute + boundary transfer to the next cell's owner, add) on the virtual
machine; the numerical kernel itself is exercised functionally by the
serial solver and the other two strategies (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..distrib.multipart import MultiPartition3D
from ..runtime.sim import Rank
from . import flops


@dataclass
class HandMpiOptions:
    """Tunables of the hand-MPI schedule model.

    ``cell_overhead_k`` models the cost of working on q diagonal cells
    instead of one large block: each cell's line solves run on lines a
    factor q shorter (loop startup/drain, per-cell boundary handling), an
    overhead proportional to the cell surface-to-volume ratio ~ q/N.  It
    multiplies sweep flops by ``(1 + k*q/N)``.  This is what lets the
    compiled block codes *beat* the hand-coded BT at small processor
    counts, as the paper measured (Table 8.2: efficiencies 1.07/1.10 at
    P=4).
    """

    face_width: int = 2  # ghost depth exchanged by copy_faces
    cell_overhead_k: float = 2.2

    @classmethod
    def for_bench(cls, bench: str) -> "HandMpiOptions":
        """BT's per-cell 5x5 block solves pay a larger short-line penalty
        than SP's scalar loops — this is why the paper's compiled BT codes
        overtake the hand code at small P (Table 8.2)."""
        return cls(cell_overhead_k=2.2 if bench == "sp" else 4.5)


def _cell_points(cell) -> int:
    n = 1
    for lo, hi in cell.ranges:
        n *= max(hi - lo + 1, 0)
    return n


def _face_area(cell, dim: int) -> int:
    n = 1
    for d, (lo, hi) in enumerate(cell.ranges):
        if d != dim:
            n *= max(hi - lo + 1, 0)
    return n


def make_handmpi_node(
    bench: str,
    shape: tuple[int, int, int],
    niter: int,
    nprocs: int,
    options: Optional[HandMpiOptions] = None,
    checkpoint=None,
):
    """Build the per-rank callable for the multipartitioning schedule.

    ``checkpoint`` (a ``repro.parallel.checkpoint.CheckpointConfig``)
    records an iteration marker per rank — the schedule model carries no
    numerical state — so a crashed run resumes at the last iteration all
    ranks completed instead of from scratch.
    """
    opt = options or HandMpiOptions()
    mp = MultiPartition3D(nprocs, shape)
    NV = 5
    cell_factor = 1.0 + opt.cell_overhead_k * mp.q / min(shape)
    sweep_pp = cell_factor * (
        flops.SP_SWEEP_PER_POINT if bench == "sp" else flops.BT_SWEEP_PER_POINT
    )
    pipe_row = flops.SP_PIPE_ROW_ELEMS if bench == "sp" else flops.BT_PIPE_ROW_ELEMS

    def node(rank: Rank):
        me = rank.rank
        cells = mp.cells_of(me)
        my_points = sum(_cell_points(c) for c in cells)

        # ---- iteration-invariant schedules, built once per rank ----
        # copy_faces: exchange cell faces with differently-owned neighbor
        # cells (gets all data needed by compute_rhs)
        face_sends: list[tuple[int, int, int]] = []  # (peer, nelems, tag)
        face_recvs: list[tuple[int, int]] = []
        for c in cells:
            for dim in range(3):
                for delta, side in ((-1, 0), (+1, 1)):
                    ncoords = list(c.coords)
                    ncoords[dim] += delta
                    if not (0 <= ncoords[dim] < mp.q):
                        continue
                    owner = mp.owner_of_cell(tuple(ncoords))
                    if owner == me:
                        continue
                    nelems = opt.face_width * _face_area(c, dim) * NV
                    tag = 10 + dim * 2 + side
                    face_sends.append((owner, nelems, tag))
                    face_recvs.append((owner, 10 + dim * 2 + (1 - side)))
        # per-sweep-step (src, flops, dst, nelems) tuples per dimension
        sweep_fwd: dict[int, list] = {}
        sweep_bwd: dict[int, list] = {}
        for dim in range(3):
            fwd = []
            for s in range(mp.q):
                cell = mp.sweep_cell(me, dim, s)
                src = mp.sweep_neighbor(me, dim, s, forward=False) if s > 0 else None
                dst = mp.sweep_neighbor(me, dim, s, forward=True)
                fwd.append(
                    (src, 0.6 * sweep_pp * _cell_points(cell), dst,
                     pipe_row * _face_area(cell, dim))
                )
            sweep_fwd[dim] = fwd
            bwd = []
            for s in range(mp.q - 1, -1, -1):
                cell = mp.sweep_cell(me, dim, s)
                src = (
                    mp.sweep_neighbor(me, dim, s, forward=True)
                    if s < mp.q - 1
                    else None
                )
                dst = mp.sweep_neighbor(me, dim, s, forward=False)
                bwd.append(
                    (src, 0.4 * sweep_pp * _cell_points(cell), dst,
                     (pipe_row // 2) * _face_area(cell, dim))
                )
            sweep_bwd[dim] = bwd

        start = checkpoint.store.latest_complete(rank.size) if checkpoint else 0
        for it in range(start, niter):
            rank.set_phase("copy_faces")
            for owner, nelems, tag in face_sends:
                rank.send(owner, nelems=nelems, tag=tag)
            for owner, tag in face_recvs:
                rank.recv(owner, tag=tag)

            rank.set_phase("compute_rhs")
            rank.compute(flops.RHS_PER_POINT * my_points)

            # ---- three bi-directional sweeps: one cell per step, always ----
            for dim, phase in ((0, "x_solve"), (1, "y_solve"), (2, "z_solve")):
                rank.set_phase(phase)
                for src, work, dst, nelems in sweep_fwd[dim]:
                    if src is not None:
                        rank.recv(src, tag=40 + dim)
                    rank.compute(work)
                    if dst is not None:
                        rank.send(dst, nelems=nelems, tag=40 + dim)
                for src, work, dst, nelems in sweep_bwd[dim]:
                    if src is not None:
                        rank.recv(src, tag=60 + dim)
                    rank.compute(work)
                    if dst is not None:
                        rank.send(dst, nelems=nelems, tag=60 + dim)

            rank.set_phase("add")
            rank.compute(flops.ADD_PER_POINT * my_points)
            if checkpoint is not None and checkpoint.due(it + 1):
                checkpoint.store.save(it + 1, me, None)

        return {"rank": me, "t": rank.t}

    return node, mp
