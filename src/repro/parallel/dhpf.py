"""dHPF-compiled strategy: 2D BLOCK over (y, z) with pipelined wavefronts.

This mirrors, phase by phase, what the dHPF compiler generates for SP/BT
from the minimally-modified serial source (§8.1):

- ghost (overlap-area) exchange of ``u`` before compute_rhs,
- **LOCALIZE** partial replication: every rank computes the reciprocal
  arrays over its owned+ghost region — zero communication for them (§4.2),
- x_solve fully local (x is not distributed),
- y_solve / z_solve as **coarse-grain pipelined** wavefronts: forward
  elimination proceeds plane by plane along the distributed dimension;
  statements updating rows j+1 / j+2 run under non-owner CPs and their
  results are *written back* to the next processor (§5 + §2's model);
  the inner x dimension is blocked by the pipelining granularity G,
- §7 availability analysis removes the read communication that would flow
  against the pipeline; the residual "spurious message between successive
  pipelines" the paper measured is modeled by an option (on by default, to
  match the paper's measured configuration).

The same node program runs *functionally* (real numpy; results verified
against the serial solver) or as a pure work model (virtual time only) —
the control flow and message schedule are identical in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nas import ops
from ..runtime.sim import Rank
from . import flops
from .checkpoint import CheckpointConfig
from .decomp import BlockDecomp2D, DimBlock, chunk_ranges

#: SP variant -> rhs component slice (NAS's lhs / lhsp / lhsm systems)
SP_VARIANTS = ((0, slice(0, 3)), (1, slice(3, 4)), (2, slice(4, 5)))


def auto_granularity(
    nx: int,
    pipeline_stages: int,
    work_per_column: float,
    elems_per_column: int,
    model,
) -> int:
    """Analytic per-nest pipelining granularity (the paper's future work).

    With chunk width G, one pipeline costs roughly
    ``(nx/G + P - 1) * (w*G + alpha + beta*b*G)`` (steady state plus
    fill/drain); minimizing over G gives

        G* = sqrt( nx * alpha / ((P - 1) * (w + beta*b)) )

    where w is modeled compute seconds per x column and b the bytes sent
    per column.  Clamped to [1, nx].
    """
    if pipeline_stages <= 1:
        return nx
    per_col = work_per_column + model.beta * elems_per_column * model.word_bytes
    if per_col <= 0:
        return nx
    g = (nx * model.alpha / ((pipeline_stages - 1) * per_col)) ** 0.5
    return max(1, min(nx, int(round(g))))


@dataclass
class DhpfOptions:
    """Tunables of the dHPF-generated code (ablation knobs).

    ``granularity`` is the coarse-grain pipelining chunk width in x
    columns.  The paper's dHPF applied one *uniform* granularity to every
    nest and notes that "an independent granularity selection for each
    loop nest would lead to superior results" — pass ``granularity=0``
    for exactly that: a per-nest analytic choice (see
    :func:`auto_granularity`), implementing the paper's future work.
    """

    granularity: int = 8  # chunk width; 0 = automatic per-nest selection
    availability: bool = True  # §7: drop anti-pipeline read communication
    spurious_between_pipelines: bool = True  # the residual message (§8.1)
    localize: bool = True  # §4.2: replicate reciprocal computation
    ghost: int = 3


class _Tile:
    """Per-rank state of the dHPF 2D-block code."""

    def __init__(
        self,
        rank: Rank,
        bench: str,
        shape: tuple[int, int, int],
        decomp: BlockDecomp2D,
        opt: DhpfOptions,
        functional: bool,
    ):
        self.rank = rank
        self.bench = bench
        self.shape = shape
        self.decomp = decomp
        self.opt = opt
        self.functional = functional
        self.vm_model = rank.vm.model
        self.yb, self.zb = decomp.tile(rank.rank)
        if functional and (self.yb.owned < 3 or self.zb.owned < 3):
            raise ValueError(
                "functional dHPF tiles need >= 3 owned planes per distributed dim"
            )
        nx = shape[0]
        self.local_shape = (nx, self.yb.local_n, self.zb.local_n)
        self.own_points = nx * self.yb.owned * self.zb.owned
        self.region = (
            slice(2, nx - 2),
            self.yb.interior_region(),
            self.zb.interior_region(),
        )
        if functional:
            self.u = ops.init_field(
                shape, lo=(0, self.yb.glo, self.zb.glo), local_shape=self.local_shape
            )
            self.forcing = -0.9 * ops.compute_rhs(self.u, region=self.region)
            self.rhs = np.zeros_like(self.u)
        else:
            self.u = self.forcing = self.rhs = None

    # -- ghost exchange ----------------------------------------------------------
    def exchange_u(self) -> None:
        """Overlap-area update of u along y and z (width = opt.ghost)."""
        g = self.opt.ghost
        nx = self.shape[0]
        for dim, blk in ((1, self.yb), (2, self.zb)):
            other = self.zb if dim == 1 else self.yb
            plane = nx * other.local_n * ops.NV
            lo_nb = self.decomp.neighbor(self.rank.rank, dim - 1, -1)
            hi_nb = self.decomp.neighbor(self.rank.rank, dim - 1, +1)
            own = blk.own_slice()
            tag = 100 + dim
            # send to both neighbors first (non-blocking), then receive
            if lo_nb is not None:
                sl = _dim_slice(dim, slice(own.start, own.start + g))
                self._send(lo_nb, self.u[sl] if self.functional else None, g * plane, tag)
            if hi_nb is not None:
                sl = _dim_slice(dim, slice(own.stop - g, own.stop))
                self._send(hi_nb, self.u[sl] if self.functional else None, g * plane, tag)
            if hi_nb is not None:
                data = self.rank.recv(hi_nb, tag)
                if self.functional:
                    self.u[_dim_slice(dim, slice(own.stop, own.stop + g))] = data
            if lo_nb is not None:
                data = self.rank.recv(lo_nb, tag)
                if self.functional:
                    self.u[_dim_slice(dim, slice(own.start - g, own.start))] = data

    def exchange_reciprocals_instead_of_localize(self) -> None:
        """Ablation (localize=False): fetch boundary values of the six
        reciprocal arrays from their owners (width 1 each way, both dims)
        instead of replicating their computation."""
        nx = self.shape[0]
        for dim, blk in ((1, self.yb), (2, self.zb)):
            other = self.zb if dim == 1 else self.yb
            plane = nx * other.local_n
            for delta in (-1, +1):
                nb = self.decomp.neighbor(self.rank.rank, dim - 1, delta)
                if nb is None:
                    continue
                # six arrays, one boundary plane each
                self._send(nb, None, 6 * plane, 300 + dim * 2 + (delta > 0))
            for delta in (-1, +1):
                nb = self.decomp.neighbor(self.rank.rank, dim - 1, delta)
                if nb is None:
                    continue
                self.rank.recv(nb, 300 + dim * 2 + (delta < 0))

    def _send(self, dst: int, data, nelems: int, tag: int) -> None:
        if self.functional and data is not None:
            self.rank.send(dst, np.ascontiguousarray(data), tag=tag)
        else:
            self.rank.send(dst, nelems=nelems, tag=tag)

    # -- phases --------------------------------------------------------------
    def compute_rhs_phase(self) -> None:
        self.rank.set_phase("compute_rhs")
        self.exchange_u()
        if not self.opt.localize:
            self.exchange_reciprocals_instead_of_localize()
        recip_points = (
            self.local_shape[0] * self.local_shape[1] * self.local_shape[2]
            if self.opt.localize
            else self.own_points
        )
        self.rank.compute(
            flops.RECIP_PER_POINT * recip_points
            + (flops.RHS_PER_POINT - flops.RECIP_PER_POINT) * self.own_points
        )
        if self.functional:
            self.rhs = ops.compute_rhs(self.u, self.forcing, region=self.region)

    def x_solve(self) -> None:
        self.rank.set_phase("x_solve")
        per_point = (
            flops.SP_SWEEP_PER_POINT if self.bench == "sp" else flops.BT_SWEEP_PER_POINT
        )
        self.rank.compute(per_point * self.own_points)
        if self.functional:
            if self.bench == "sp":
                ops.sp_sweep(self.u, self.rhs, axis=0)
            else:
                ops.bt_sweep(self.u, self.rhs, axis=0)

    def line_solve(self, dim: int) -> None:
        """Pipelined y_solve (dim=1) or z_solve (dim=2)."""
        self.rank.set_phase("y_solve" if dim == 1 else "z_solve")
        if self.bench == "sp":
            self._sp_pipelined_solve(dim)
        else:
            self._bt_pipelined_solve(dim)

    def add_phase(self) -> None:
        self.rank.set_phase("add")
        self.rank.compute(flops.ADD_PER_POINT * self.own_points)
        if self.functional:
            ops.add(self.u, self.rhs, region=self.region)

    def step(self) -> None:
        self.compute_rhs_phase()
        self.x_solve()
        self.line_solve(1)
        self.line_solve(2)
        self.add_phase()

    # -- SP pipelined solve --------------------------------------------------------
    def _sp_pipelined_solve(self, dim: int) -> None:
        blk = self.yb if dim == 1 else self.zb
        pd = dim - 1  # processor-grid axis
        prev = self.decomp.neighbor(self.rank.rank, pd, -1)
        nxt = self.decomp.neighbor(self.rank.rank, pd, +1)
        gn = self.shape[dim]
        nx = self.shape[0]
        other = self.zb if dim == 1 else self.yb
        build_points = self.local_shape[0] * self.local_shape[1] * self.local_shape[2]
        sweep_flops_own = flops.SP_SWEEP_PER_POINT * self.own_points
        g = self.opt.granularity
        if g <= 0:
            stages = self.decomp.pgrid[dim - 1]
            work_col = self.vm_model.compute_time(
                sweep_flops_own * 0.6 / 3 / nx
            ) if self.vm_model else 0.0
            g = auto_granularity(
                nx, stages, work_col, 2 * other.local_n * 10, self.vm_model
            ) if self.vm_model else 8
        chunks = chunk_ranges(nx, g)

        # Pre-nest vectorized read communication (§7: "occurs before the
        # loop nest begins and is therefore not disruptive to the
        # pipeline"): the forward elimination's lookahead updates of rows
        # b+1 / b+2 accumulate into the *initial* rhs values of those rows,
        # which belong to the next processor — fetch them once, hoisted.
        oa_g, ob_g = blk.to_local(blk.lo), blk.to_local(blk.hi)
        if prev is not None:
            payload = None
            if self.functional:
                rfull = np.moveaxis(self.rhs, dim, 0)
                payload = rfull[oa_g : oa_g + 2].copy()
            self._send(prev, payload, 2 * nx * other.local_n * 5, 480)
        if nxt is not None:
            data = self.rank.recv(nxt, tag=480)
            if self.functional:
                rfull = np.moveaxis(self.rhs, dim, 0)
                rfull[ob_g + 1 : ob_g + 3] = data

        # LOCALIZE once per sweep: the three variant builds share the same
        # reciprocal arrays, so compute them a single time.
        recip = ops.compute_reciprocals(self.u) if self.functional else None
        for variant, comps in SP_VARIANTS:
            ncomp = comps.stop - comps.start
            row_elems_fwd = 2 * other.local_n * (5 + ncomp)  # per x column
            row_elems_bwd = 2 * other.local_n * ncomp

            if self.functional:
                lhs = ops.sp_build_lhs(
                    self.u, dim, variant, glo=blk.glo, gn=gn, recip=recip
                )
                # lhs dims: (5, line, x?, other) — moveaxis put `dim` first;
                # remaining dims keep original order, so x is dim index 1.
                rm = np.moveaxis(self.rhs, dim, 0)[..., comps]
            else:
                lhs = rm = None
            # only the *replicated* (ghost-region) share of the lhs build is
            # extra work relative to the hand-coded version
            self.rank.compute(
                flops.SP_BUILD_PER_POINT / 3 * (build_points - self.own_points)
            )

            # The residual "spurious message between two successive
            # pipelines" the paper measured (§8.1): communication opposite
            # the pipeline flow between variants, delaying each start-up.
            if variant > 0 and self.opt.spurious_between_pipelines:
                if nxt is not None:
                    self.rank.recv(nxt, tag=900 + variant)
                if prev is not None:
                    self._send(prev, None, 2 * nx * other.local_n * 5, 900 + variant)

            oa, ob = blk.to_local(blk.lo), blk.to_local(blk.hi)
            last_step = min(blk.hi, gn - 3)
            # ---- forward elimination, chunked over x ----
            for (clo, chi) in chunks:
                cw = chi - clo + 1
                if prev is not None:
                    data = self.rank.recv(prev, tag=500 + variant)
                    if self.functional:
                        _unpack_rows(lhs, rm, data, (oa, oa + 1), clo, chi, ncomp)
                    if not self.opt.availability:
                        # §7 OFF: the just-received rows were *written back*
                        # to us (the owner); dHPF's model then re-fetches
                        # them for the writer's own later reads — echo them
                        # so the producer can continue. A full round trip
                        # against the pipeline, per chunk: this is what
                        # "completely disrupts the pipeline".
                        self._send(prev, None, cw * row_elems_fwd, 950 + variant)
                self.rank.compute(
                    sweep_flops_own * 0.6 / 3 * (cw / nx)
                )
                if self.functional:
                    for i in range(oa if prev is not None else 0, blk.to_local(last_step) + 1):
                        _sp_forward_chunk(lhs, rm, i, clo, chi)
                    if nxt is None:
                        _sp_finish_chunk(lhs, rm, blk.to_local(gn - 2), clo, chi)
                if nxt is not None:
                    payload = (
                        _pack_rows(lhs, rm, (ob + 1, ob + 2), clo, chi, ncomp)
                        if self.functional
                        else None
                    )
                    self._send(nxt, payload, cw * row_elems_fwd, 500 + variant)
                    if not self.opt.availability:
                        # block on the owner's echo before the next chunk
                        self.rank.recv(nxt, tag=950 + variant)
            # ---- back substitution, chunked over x (reverse pipeline) ----
            for (clo, chi) in chunks:
                cw = chi - clo + 1
                if nxt is not None:
                    data = self.rank.recv(nxt, tag=700 + variant)
                    if self.functional:
                        _unpack_rhs_rows(rm, data, (ob + 1, ob + 2), clo, chi)
                self.rank.compute(sweep_flops_own * 0.4 / 3 * (cw / nx))
                if self.functional:
                    start = blk.to_local(min(blk.hi, gn - 3))
                    for i in range(start, oa - 1, -1):
                        _sp_back_chunk(lhs, rm, i, clo, chi)
                if prev is not None:
                    payload = (
                        _pack_rhs_rows(rm, (oa, oa + 1), clo, chi)
                        if self.functional
                        else None
                    )
                    self._send(prev, payload, cw * row_elems_bwd, 700 + variant)

    # -- BT pipelined solve ----------------------------------------------------------
    def _bt_pipelined_solve(self, dim: int) -> None:
        blk = self.yb if dim == 1 else self.zb
        pd = dim - 1
        prev = self.decomp.neighbor(self.rank.rank, pd, -1)
        nxt = self.decomp.neighbor(self.rank.rank, pd, +1)
        gn = self.shape[dim]
        nx = self.shape[0]
        other = self.zb if dim == 1 else self.yb
        build_points = self.local_shape[0] * self.local_shape[1] * self.local_shape[2]
        sweep_flops_own = flops.BT_SWEEP_PER_POINT * self.own_points
        g = self.opt.granularity
        if g <= 0:
            stages = self.decomp.pgrid[dim - 1]
            work_col = self.vm_model.compute_time(
                sweep_flops_own * 0.7 / nx
            ) if self.vm_model else 0.0
            g = auto_granularity(
                nx, stages, work_col, other.local_n * 30, self.vm_model
            ) if self.vm_model else 8
        chunks = chunk_ranges(nx, g)

        if self.functional:
            rm = np.moveaxis(self.rhs, dim, 0)
            um = np.moveaxis(self.u, dim, 0)
            A, B, C = ops.bt_build_blocks(um, 0)
            B = B.copy()
            C = C.copy()
        else:
            rm = A = B = C = None
        self.rank.compute(
            flops.BT_BUILD_PER_POINT * (build_points - self.own_points)
        )

        row_elems_fwd = other.local_n * (25 + 5)  # C block + rhs per x column
        row_elems_bwd = other.local_n * 5

        # global interior rows are 1..gn-2; local row r <-> global blk.glo + r.
        # A/B/C arrays index k = local_row - 1.
        first = max(blk.lo, 1)
        last = min(blk.hi, gn - 2)
        oa, ob = blk.to_local(first), blk.to_local(last)
        for (clo, chi) in chunks:
            cw = chi - clo + 1
            xsl = slice(clo, chi + 1)
            if prev is not None:
                data = self.rank.recv(prev, tag=520)
                if self.functional:
                    # updated C and rhs of the row just below our block
                    C[oa - 2, xsl] = data[0]
                    rm[oa - 1, xsl] = data[1][..., :, 0]
            self.rank.compute(sweep_flops_own * 0.7 * (cw / nx))
            if self.functional:
                for i in range(oa, ob + 1):
                    k = i - 1
                    if blk.glo + i > 1:
                        ops.bt_matvec_sub(A[k, xsl], rm[i - 1, xsl], rm[i, xsl])
                        ops.bt_matmul_sub(A[k, xsl], C[k - 1, xsl], B[k, xsl])
                    ops.bt_binvcrhs(B[k, xsl], C[k, xsl], rm[i, xsl])
            if nxt is not None:
                payload = None
                if self.functional:
                    # updated C block row + solved rhs row, padded into one
                    # (2, ..., 5, 5) buffer
                    payload = np.zeros((2,) + C[ob - 1, xsl].shape, dtype=np.float64)
                    payload[0] = C[ob - 1, xsl]
                    payload[1, ..., :, 0] = rm[ob, xsl]
                self._send(nxt, payload, cw * row_elems_fwd, 520)
        # back substitution
        for (clo, chi) in chunks:
            cw = chi - clo + 1
            xsl = slice(clo, chi + 1)
            if nxt is not None:
                data = self.rank.recv(nxt, tag=720)
                if self.functional:
                    rm[ob + 1, xsl] = data
            self.rank.compute(sweep_flops_own * 0.3 * (cw / nx))
            if self.functional:
                top = ob if nxt is not None else ob - 1
                for i in range(top, oa - 1, -1):
                    k = i - 1
                    if blk.glo + i <= gn - 3:
                        ops.bt_matvec_sub(C[k, xsl], rm[i + 1, xsl], rm[i, xsl])
            if prev is not None:
                payload = rm[oa, xsl].copy() if self.functional else None
                self._send(prev, payload, cw * row_elems_bwd, 720)


# ---------------------------------------------------------------------------
# SP chunk helpers (x-restricted forward/back steps)
# ---------------------------------------------------------------------------

def _xsl(arr: np.ndarray, clo: int, chi: int):
    """Slice the x dimension (index 1 after moveaxis of the line dim)."""
    return arr[:, clo : chi + 1] if arr.ndim >= 2 else arr


def _sp_forward_chunk(lhs: np.ndarray, rm: np.ndarray, i: int, clo: int, chi: int) -> None:
    x = slice(clo, chi + 1)
    fac1 = 1.0 / lhs[2][i, x]
    lhs[3][i, x] = fac1 * lhs[3][i, x]
    lhs[4][i, x] = fac1 * lhs[4][i, x]
    rm[i, x] = fac1[..., None] * rm[i, x]
    lhs[2][i + 1, x] = lhs[2][i + 1, x] - lhs[1][i + 1, x] * lhs[3][i, x]
    lhs[3][i + 1, x] = lhs[3][i + 1, x] - lhs[1][i + 1, x] * lhs[4][i, x]
    rm[i + 1, x] = rm[i + 1, x] - (lhs[1][i + 1, x])[..., None] * rm[i, x]
    lhs[1][i + 2, x] = lhs[1][i + 2, x] - lhs[0][i + 2, x] * lhs[3][i, x]
    lhs[2][i + 2, x] = lhs[2][i + 2, x] - lhs[0][i + 2, x] * lhs[4][i, x]
    rm[i + 2, x] = rm[i + 2, x] - (lhs[0][i + 2, x])[..., None] * rm[i, x]


def _sp_finish_chunk(lhs: np.ndarray, rm: np.ndarray, i: int, clo: int, chi: int) -> None:
    """Rows gn-2 / gn-1 tail, plus the first back-substitution row."""
    x = slice(clo, chi + 1)
    fac1 = 1.0 / lhs[2][i, x]
    lhs[3][i, x] = fac1 * lhs[3][i, x]
    rm[i, x] = fac1[..., None] * rm[i, x]
    lhs[2][i + 1, x] = lhs[2][i + 1, x] - lhs[1][i + 1, x] * lhs[3][i, x]
    rm[i + 1, x] = rm[i + 1, x] - (lhs[1][i + 1, x])[..., None] * rm[i, x]
    fac2 = 1.0 / lhs[2][i + 1, x]
    rm[i + 1, x] = fac2[..., None] * rm[i + 1, x]
    rm[i, x] = rm[i, x] - lhs[3][i, x][..., None] * rm[i + 1, x]


def _sp_back_chunk(lhs: np.ndarray, rm: np.ndarray, i: int, clo: int, chi: int) -> None:
    x = slice(clo, chi + 1)
    rm[i, x] = (
        rm[i, x]
        - lhs[3][i, x][..., None] * rm[i + 1, x]
        - lhs[4][i, x][..., None] * rm[i + 2, x]
    )


def _pack_rows(lhs, rm, rows, clo, chi, ncomp) -> np.ndarray:
    x = slice(clo, chi + 1)
    pieces = []
    for r in rows:
        for b in range(5):
            pieces.append(lhs[b][r, x][None])
        pieces.append(np.moveaxis(rm[r, x], -1, 0))
    return np.concatenate(pieces, axis=0)


def _unpack_rows(lhs, rm, data, rows, clo, chi, ncomp) -> None:
    x = slice(clo, chi + 1)
    idx = 0
    for r in rows:
        for b in range(5):
            lhs[b][r, x] = data[idx]
            idx += 1
        rm[r, x] = np.moveaxis(data[idx : idx + ncomp], 0, -1)
        idx += ncomp


def _pack_rhs_rows(rm, rows, clo, chi) -> np.ndarray:
    x = slice(clo, chi + 1)
    return np.stack([rm[r, x] for r in rows])


def _unpack_rhs_rows(rm, data, rows, clo, chi) -> None:
    x = slice(clo, chi + 1)
    for k, r in enumerate(rows):
        rm[r, x] = data[k]


def _dim_slice(dim: int, s: slice):
    out: list = [slice(None)] * 3
    out[dim] = s
    return tuple(out)


# ---------------------------------------------------------------------------
# node program factory
# ---------------------------------------------------------------------------

def make_dhpf_node(
    bench: str,
    shape: tuple[int, int, int],
    niter: int,
    pgrid: tuple[int, int],
    options: Optional[DhpfOptions] = None,
    functional: bool = True,
    checkpoint: Optional[CheckpointConfig] = None,
):
    """Build the per-rank callable for the dHPF-style code.

    With ``checkpoint``, each rank snapshots its local ``u`` tile into the
    shared store every ``checkpoint.interval`` iterations and, on (re)start,
    resumes from the latest iteration all ranks completed — the recovery
    path of the chaos harness (see ``repro.parallel.checkpoint``).
    """
    opt = options or DhpfOptions()
    decomp = BlockDecomp2D(shape, pgrid, ghost=opt.ghost)

    def node(rank: Rank):
        tile = _Tile(rank, bench, shape, decomp, opt, functional)
        start = 0
        if checkpoint is not None:
            start = checkpoint.store.latest_complete(rank.size)
            if start > 0 and functional:
                tile.u = checkpoint.store.restore(start, rank.rank)
        for it in range(start, niter):
            tile.step()
            if checkpoint is not None and checkpoint.due(it + 1):
                state = tile.u if functional else None
                checkpoint.charge(rank, state)
                checkpoint.store.save(it + 1, rank.rank, state)
        out = {"rank": rank.rank, "t": rank.t}
        if functional:
            own = tile.u[
                :, tile.yb.own_slice(), tile.zb.own_slice()
            ]
            out["u_own"] = own.copy()
            out["lo"] = (0, tile.yb.lo, tile.zb.lo)
            out["checksum"] = float(np.sum(np.abs(own)))
        return out

    return node, decomp
