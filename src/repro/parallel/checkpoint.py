"""Coordinated checkpoint/restart for the parallel solvers.

The dHPF and hand-MPI node programs checkpoint at iteration boundaries —
globally consistent cut points, since every rank finishes iteration *k*
before touching iteration *k+1* state (the ghost exchange at the top of
each step is the synchronizer).  A :class:`CheckpointStore` outlives the
executor: after a :class:`~repro.runtime.faults.RankCrashed` (virtual
machine) or a :class:`~repro.runtime.procexec.WorkerCrashed` (real
processes) the harness simply re-runs the same node program with the same
store, and every rank resumes from the latest iteration for which *all*
ranks saved a snapshot.  Because the solvers are deterministic, the
recovered run is bitwise identical to an uninterrupted one and still
passes NPB-style verification (:mod:`repro.nas.verify`).

Functional runs snapshot the full local ``u`` tile (owned + ghost planes,
exactly the state an uninterrupted run would carry into the next
iteration); work-model runs snapshot only the iteration marker.

Stores can also persist to disk (one self-validating file per iteration;
see :meth:`CheckpointStore.save_dir`).  The on-disk format carries a magic
header, payload length, and CRC so a truncated or corrupted file raises a
typed :class:`CheckpointCorrupted` instead of a raw unpickling crash, and
directory recovery (:meth:`CheckpointStore.load_dir`) skips damaged files
and falls back to the newest intact checkpoint.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

#: on-disk header: magic, then big-endian (crc32, payload_length)
_MAGIC = b"RPROCKPT1\n"
_HEADER = struct.Struct(">IQ")
_FILE_RE = re.compile(r"^ckpt-(\d{8})\.rpc$")


class CheckpointCorrupted(RuntimeError):
    """A checkpoint file failed validation (truncated, bit-rotted, or not
    a checkpoint at all).  Carries the path and a machine-checkable reason
    so recovery code can log it and fall back to an older checkpoint."""

    def __init__(self, path: str, reason: str):
        super().__init__(f"corrupted checkpoint {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class CheckpointStore:
    """Snapshots keyed by (iteration, rank); survives executor restarts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snaps: dict[int, dict[int, Any]] = {}
        #: optional mirror hook ``(iteration, rank, state) -> None``.  The
        #: real-process executor sets this inside forked workers so saves
        #: are forwarded to the parent supervisor, whose copy of the store
        #: is the one a restarted gang inherits.
        self._publish = None

    def save(self, iteration: int, rank: int, state: Any) -> None:
        """Record ``state`` (an array, or None in work-model mode)."""
        if state is not None and hasattr(state, "copy"):
            state = state.copy()
        with self._lock:
            self._snaps.setdefault(iteration, {})[rank] = state
        if self._publish is not None:
            self._publish(iteration, rank, state)

    def latest_complete(self, nranks: int) -> int:
        """Newest iteration every rank checkpointed (0 = start over)."""
        with self._lock:
            complete = [it for it, s in self._snaps.items() if len(s) >= nranks]
        return max(complete, default=0)

    def restore(self, iteration: int, rank: int) -> Any:
        with self._lock:
            state = self._snaps[iteration][rank]
        return state.copy() if state is not None and hasattr(state, "copy") else state

    def iterations(self) -> list[int]:
        with self._lock:
            return sorted(self._snaps)

    def clear(self) -> None:
        with self._lock:
            self._snaps.clear()

    # -- disk persistence ------------------------------------------------------
    def save_file(self, path: str, iteration: int) -> None:
        """Write one iteration's snapshots as a self-validating file.

        Layout: magic, big-endian (crc32, length), pickled
        ``{iteration: {rank: state}}``.  Written to a temp name and
        renamed, so a crash mid-write leaves no half-file under the final
        name."""
        with self._lock:
            snaps = dict(self._snaps.get(iteration, {}))
        payload = pickle.dumps({iteration: snaps}, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(_HEADER.pack(zlib.crc32(payload), len(payload)))
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def load_file(self, path: str) -> list[int]:
        """Merge one checkpoint file into the store; returns the iterations
        it contained.  Raises :class:`CheckpointCorrupted` on any damage —
        never a raw ``EOFError``/``UnpicklingError``/``KeyError``."""
        try:
            with open(path, "rb") as fh:
                head = fh.read(len(_MAGIC))
                if head != _MAGIC:
                    raise CheckpointCorrupted(path, "bad magic (not a checkpoint file)")
                raw = fh.read(_HEADER.size)
                if len(raw) < _HEADER.size:
                    raise CheckpointCorrupted(path, "truncated header")
                crc, length = _HEADER.unpack(raw)
                payload = fh.read(length)
        except OSError as exc:
            raise CheckpointCorrupted(path, f"unreadable: {exc}") from exc
        if len(payload) < length:
            raise CheckpointCorrupted(
                path, f"truncated payload ({len(payload)} of {length} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CheckpointCorrupted(path, "CRC mismatch (bit rot or torn write)")
        try:
            snaps = pickle.loads(payload)
        except Exception as exc:  # CRC passed but unpickling failed: corrupt
            raise CheckpointCorrupted(path, f"undecodable payload: {exc}") from exc
        if not isinstance(snaps, dict) or not all(
            isinstance(it, int) and isinstance(per_rank, dict)
            for it, per_rank in snaps.items()
        ):
            raise CheckpointCorrupted(path, "payload is not {iteration: {rank: state}}")
        with self._lock:
            for it, per_rank in snaps.items():
                self._snaps.setdefault(it, {}).update(per_rank)
        return sorted(snaps)

    def save_dir(self, directory: str) -> list[str]:
        """Persist every iteration as ``ckpt-XXXXXXXX.rpc`` in ``directory``
        (created if needed); returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for it in self.iterations():
            path = os.path.join(directory, f"ckpt-{it:08d}.rpc")
            self.save_file(path, it)
            paths.append(path)
        return paths

    @classmethod
    def load_dir(cls, directory: str) -> tuple["CheckpointStore", list[CheckpointCorrupted]]:
        """Rebuild a store from a checkpoint directory, newest file first.

        Damaged files are skipped (and returned as typed
        :class:`CheckpointCorrupted` records) rather than aborting the
        recovery — so when the newest checkpoint is truncated, the store
        still holds the previous intact one and ``latest_complete`` resumes
        from there."""
        store = cls()
        skipped: list[CheckpointCorrupted] = []
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return store, skipped
        files = sorted(
            (int(m.group(1)), n)
            for n in names
            if (m := _FILE_RE.match(n)) is not None
        )
        for _, name in reversed(files):
            try:
                store.load_file(os.path.join(directory, name))
            except CheckpointCorrupted as exc:
                skipped.append(exc)
        return store, skipped


@dataclass
class CheckpointConfig:
    """Checkpoint policy handed to the node-program factories.

    ``interval`` is in solver iterations.  ``cost_per_byte`` charges the
    snapshot copy to the rank's virtual clock (0.0 models an asynchronous
    copy-on-write checkpointer; set it to the model's ``beta`` to model a
    memory-speed blocking copy).
    """

    store: CheckpointStore = field(default_factory=CheckpointStore)
    interval: int = 1
    cost_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("checkpoint interval must be a positive iteration count")
        if self.cost_per_byte < 0:
            raise ValueError("cost_per_byte must be non-negative")

    def due(self, iteration: int) -> bool:
        """Checkpoint after ``iteration`` (1-based) completes?"""
        return iteration % self.interval == 0

    def charge(self, rank, state: Optional[Any]) -> None:
        """Advance the rank's clock by the modeled snapshot cost."""
        if self.cost_per_byte > 0 and state is not None:
            rank.elapse(self.cost_per_byte * state.nbytes)
