"""Coordinated in-memory checkpoint/restart for the parallel solvers.

The dHPF and hand-MPI node programs checkpoint at iteration boundaries —
globally consistent cut points, since every rank finishes iteration *k*
before touching iteration *k+1* state (the ghost exchange at the top of
each step is the synchronizer).  A :class:`CheckpointStore` outlives the
virtual machine: after a :class:`~repro.runtime.faults.RankCrashed` the
harness simply re-runs the same node program with the same store, and
every rank resumes from the latest iteration for which *all* ranks saved a
snapshot.  Because the solvers are deterministic, the recovered run is
bitwise identical to an uninterrupted one and still passes NPB-style
verification (:mod:`repro.nas.verify`).

Functional runs snapshot the full local ``u`` tile (owned + ghost planes,
exactly the state an uninterrupted run would carry into the next
iteration); work-model runs snapshot only the iteration marker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional


class CheckpointStore:
    """Snapshots keyed by (iteration, rank); survives VM restarts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snaps: dict[int, dict[int, Any]] = {}

    def save(self, iteration: int, rank: int, state: Any) -> None:
        """Record ``state`` (an array, or None in work-model mode)."""
        if state is not None and hasattr(state, "copy"):
            state = state.copy()
        with self._lock:
            self._snaps.setdefault(iteration, {})[rank] = state

    def latest_complete(self, nranks: int) -> int:
        """Newest iteration every rank checkpointed (0 = start over)."""
        with self._lock:
            complete = [it for it, s in self._snaps.items() if len(s) >= nranks]
        return max(complete, default=0)

    def restore(self, iteration: int, rank: int) -> Any:
        with self._lock:
            state = self._snaps[iteration][rank]
        return state.copy() if state is not None and hasattr(state, "copy") else state

    def iterations(self) -> list[int]:
        with self._lock:
            return sorted(self._snaps)

    def clear(self) -> None:
        with self._lock:
            self._snaps.clear()


@dataclass
class CheckpointConfig:
    """Checkpoint policy handed to the node-program factories.

    ``interval`` is in solver iterations.  ``cost_per_byte`` charges the
    snapshot copy to the rank's virtual clock (0.0 models an asynchronous
    copy-on-write checkpointer; set it to the model's ``beta`` to model a
    memory-speed blocking copy).
    """

    store: CheckpointStore = field(default_factory=CheckpointStore)
    interval: int = 1
    cost_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("checkpoint interval must be a positive iteration count")
        if self.cost_per_byte < 0:
            raise ValueError("cost_per_byte must be non-negative")

    def due(self, iteration: int) -> bool:
        """Checkpoint after ``iteration`` (1-based) completes?"""
        return iteration % self.interval == 0

    def charge(self, rank, state: Optional[Any]) -> None:
        """Advance the rank's clock by the modeled snapshot cost."""
        if self.cost_per_byte > 0 and state is not None:
            rank.elapse(self.cost_per_byte * state.nbytes)
