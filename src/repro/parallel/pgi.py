"""PGI pghpf strategy: 1D BLOCK over z + copy-transpose for the z solve.

Per §8.1, the PGI HPF implementation distributes the principal 3D arrays
block-wise along z only.  x and y line solves are then fully local; before
the z solve the data for ``u`` and ``rhs`` is copied into variables
partitioned along *y* (a full transpose = all-to-all), the z sweep runs
locally, and the data is transposed back.  Privatizable arrays were
scalarized by hand in the PGI source (statement alignment + peeling) — a
performance detail with no communication impact, so the work model charges
the same per-point solve cost.

Functional mode is verified bit-for-bit against the serial solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nas import ops
from ..runtime.sim import Rank
from . import flops
from .decomp import BlockDecomp1D, block_ranges


@dataclass
class PgiOptions:
    """Tunables of the PGI-style code.

    ``scalar_factor`` models pghpf 2.2's Fortran-90-style generated-code
    quality relative to the F77 hand/dHPF codes (array-syntax temporaries,
    scalarized privatizables with peeled iterations — §8.1); it multiplies
    per-point compute cost.  ``pack_flops`` charges buffer pack/unpack work
    per element moved by the copy-transposes.  Both are calibrated against
    the paper's Class A 4-processor gap (PGI 820 s vs hand 436 s) and
    documented in EXPERIMENTS.md.
    """

    ghost: int = 2
    transpose_u: bool = True  # PGI transposes both u and rhs
    scalar_factor: float = 1.45
    pack_flops: float = 4.0

    @classmethod
    def for_bench(cls, bench: str) -> "PgiOptions":
        """Per-benchmark defaults: the pghpf F90 scalar penalty hits SP's
        scalar pentadiagonal loops hard but not BT's dense block algebra
        (Table 8.2 shows PGI-BT *beating* the hand code at P <= 16)."""
        return cls(scalar_factor=1.45 if bench == "sp" else 0.93)


class _ZTile:
    def __init__(
        self,
        rank: Rank,
        bench: str,
        shape: tuple[int, int, int],
        decomp: BlockDecomp1D,
        opt: PgiOptions,
        functional: bool,
    ):
        self.rank = rank
        self.bench = bench
        self.shape = shape
        self.decomp = decomp
        self.opt = opt
        self.functional = functional
        self.zb = decomp.tile(rank.rank)
        self.y_ranges = block_ranges(shape[1], decomp.nprocs)
        nx, ny, _ = shape
        self.local_shape = (nx, ny, self.zb.local_n)
        self.own_points = nx * ny * self.zb.owned
        self.region = (
            slice(2, nx - 2),
            slice(2, ny - 2),
            self.zb.interior_region(),
        )
        if functional:
            self.u = ops.init_field(
                shape, lo=(0, 0, self.zb.glo), local_shape=self.local_shape
            )
            self.forcing = -0.9 * ops.compute_rhs(self.u, region=self.region)
            self.rhs = np.zeros_like(self.u)
        else:
            self.u = self.forcing = self.rhs = None

    # -- communication -------------------------------------------------------------
    def exchange_u(self) -> None:
        g = self.opt.ghost
        nx, ny, _ = self.shape
        plane = nx * ny * ops.NV
        lo_nb = self.decomp.neighbor(self.rank.rank, -1)
        hi_nb = self.decomp.neighbor(self.rank.rank, +1)
        own = self.zb.own_slice()
        if lo_nb is not None:
            self._send(lo_nb, self.u[:, :, own.start : own.start + g] if self.functional else None, g * plane, 101)
        if hi_nb is not None:
            self._send(hi_nb, self.u[:, :, own.stop - g : own.stop] if self.functional else None, g * plane, 101)
        if hi_nb is not None:
            data = self.rank.recv(hi_nb, 101)
            if self.functional:
                self.u[:, :, own.stop : own.stop + g] = data
        if lo_nb is not None:
            data = self.rank.recv(lo_nb, 101)
            if self.functional:
                self.u[:, :, own.start - g : own.start] = data

    def _send(self, dst: int, data, nelems: int, tag: int) -> None:
        if self.functional and data is not None:
            self.rank.send(dst, np.ascontiguousarray(data), tag=tag)
        else:
            self.rank.send(dst, nelems=nelems, tag=tag)

    def _transpose_to_y(self, arr: Optional[np.ndarray], tag: int) -> Optional[np.ndarray]:
        """z-block layout -> y-block layout (full z) via all-to-all."""
        nx, ny, nz = self.shape
        me = self.rank.rank
        ylo, yhi = self.y_ranges[me]
        own_z = self.zb.own_slice()
        out = (
            np.zeros((nx, yhi - ylo + 1, nz, ops.NV), dtype=np.float64)
            if self.functional
            else None
        )
        for q in range(self.decomp.nprocs):
            if q == me:
                continue
            qlo, qhi = self.y_ranges[q]
            block = None
            if self.functional:
                block = arr[:, qlo : qhi + 1, own_z]
            nel = nx * max(qhi - qlo + 1, 0) * self.zb.owned * ops.NV
            self._send(q, block, nel, tag)
        if self.functional:
            out[:, :, self.zb.lo : self.zb.hi + 1] = arr[:, ylo : yhi + 1, own_z]
        for q in range(self.decomp.nprocs):
            if q == me:
                continue
            data = self.rank.recv(q, tag)
            if self.functional:
                qz_lo, qz_hi = self.decomp.ranges[q]
                out[:, :, qz_lo : qz_hi + 1] = data
        return out

    def _transpose_from_y(self, arr_t: Optional[np.ndarray], dest: Optional[np.ndarray], tag: int) -> None:
        """y-block layout -> z-block layout (inverse all-to-all)."""
        nx, ny, nz = self.shape
        me = self.rank.rank
        ylo, yhi = self.y_ranges[me]
        own_z = self.zb.own_slice()
        for q in range(self.decomp.nprocs):
            if q == me:
                continue
            qz_lo, qz_hi = self.decomp.ranges[q]
            block = None
            if self.functional:
                block = arr_t[:, :, qz_lo : qz_hi + 1]
            nel = nx * (yhi - ylo + 1) * max(qz_hi - qz_lo + 1, 0) * ops.NV
            self._send(q, block, nel, tag)
        if self.functional:
            dest[:, ylo : yhi + 1, own_z] = arr_t[:, :, self.zb.lo : self.zb.hi + 1]
        for q in range(self.decomp.nprocs):
            if q == me:
                continue
            data = self.rank.recv(q, tag)
            if self.functional:
                qlo, qhi = self.y_ranges[q]
                dest[:, qlo : qhi + 1, own_z] = data

    # -- phases -----------------------------------------------------------------
    def step(self) -> None:
        r = self.rank
        kappa = self.opt.scalar_factor
        r.set_phase("compute_rhs")
        self.exchange_u()
        r.compute(kappa * flops.RHS_PER_POINT * self.own_points)
        if self.functional:
            self.rhs = ops.compute_rhs(self.u, self.forcing, region=self.region)

        sweep_pp = (
            flops.SP_SWEEP_PER_POINT if self.bench == "sp" else flops.BT_SWEEP_PER_POINT
        )
        r.set_phase("x_solve")
        r.compute(kappa * sweep_pp * self.own_points)
        if self.functional:
            self._sweep(self.u, self.rhs, 0)
        r.set_phase("y_solve")
        r.compute(kappa * sweep_pp * self.own_points)
        if self.functional:
            self._sweep(self.u, self.rhs, 1)

        r.set_phase("z_solve")
        # buffer pack/unpack cost of the copy-transposes (per element moved)
        narrays = 3 if self.opt.transpose_u else 2
        moved = narrays * self.shape[0] * self.shape[1] * self.zb.owned * ops.NV
        r.compute(self.opt.pack_flops * 2 * moved)
        u_t = self._transpose_to_y(self.u, 210) if self.opt.transpose_u else self.u
        rhs_t = self._transpose_to_y(self.rhs, 211)
        r.compute(kappa * sweep_pp * self.own_points)
        if self.functional:
            self._sweep(u_t, rhs_t, 2)
        self._transpose_from_y(rhs_t, self.rhs, 212)

        r.set_phase("add")
        r.compute(kappa * flops.ADD_PER_POINT * self.own_points)
        if self.functional:
            ops.add(self.u, self.rhs, region=self.region)

    def _sweep(self, u: np.ndarray, rhs: np.ndarray, axis: int) -> None:
        if self.bench == "sp":
            ops.sp_sweep(u, rhs, axis=axis)
        else:
            ops.bt_sweep(u, rhs, axis=axis)


def make_pgi_node(
    bench: str,
    shape: tuple[int, int, int],
    niter: int,
    nprocs: int,
    options: Optional[PgiOptions] = None,
    functional: bool = True,
):
    """Build the per-rank callable for the PGI-style code."""
    opt = options or PgiOptions()
    decomp = BlockDecomp1D(shape, nprocs, ghost=opt.ghost)

    def node(rank: Rank):
        tile = _ZTile(rank, bench, shape, decomp, opt, functional)
        for _ in range(niter):
            tile.step()
        out = {"rank": rank.rank, "t": rank.t}
        if functional:
            own = tile.u[:, :, tile.zb.own_slice()]
            out["u_own"] = own.copy()
            out["lo"] = (0, 0, tile.zb.lo)
            out["checksum"] = float(np.sum(np.abs(own)))
        return out

    return node, decomp
