"""Block decompositions and ghost-region bookkeeping for the tile codes."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def block_ranges(n: int, p: int) -> list[tuple[int, int]]:
    """HPF BLOCK split of [0, n) over p processors: block = ceil(n/p);
    inclusive (lo, hi) per coordinate (possibly empty: lo > hi)."""
    b = math.ceil(n / p)
    out = []
    for k in range(p):
        lo = k * b
        hi = min(lo + b - 1, n - 1)
        out.append((lo, hi))
    return out


@dataclass(frozen=True)
class DimBlock:
    """One rank's extent along one distributed dimension."""

    lo: int  # first owned global index
    hi: int  # last owned global index (inclusive)
    n: int  # global extent
    ghost: int  # ghost width

    @property
    def owned(self) -> int:
        return max(self.hi - self.lo + 1, 0)

    @property
    def glo(self) -> int:
        """First global index present in the local (ghosted) array."""
        return max(self.lo - self.ghost, 0)

    @property
    def ghi(self) -> int:
        """Last global index present in the local array."""
        return min(self.hi + self.ghost, self.n - 1)

    @property
    def local_n(self) -> int:
        return self.ghi - self.glo + 1

    def to_local(self, g: int) -> int:
        """Global index -> local array index."""
        return g - self.glo

    def own_slice(self) -> slice:
        return slice(self.to_local(self.lo), self.to_local(self.hi) + 1)

    def interior_region(self) -> slice:
        """Local slice of owned points that are also global-interior
        (>= 2 from each domain face) — where rhs/add apply."""
        a = max(self.lo, 2)
        b = min(self.hi, self.n - 3)
        return slice(self.to_local(a), self.to_local(b) + 1)


class BlockDecomp2D:
    """(y, z) BLOCK x BLOCK decomposition used by the dHPF-style codes."""

    def __init__(self, shape: tuple[int, int, int], pgrid: tuple[int, int], ghost: int = 3):
        self.shape = shape
        self.pgrid = pgrid
        self.ghost = ghost
        self.y_ranges = block_ranges(shape[1], pgrid[0])
        self.z_ranges = block_ranges(shape[2], pgrid[1])

    @property
    def nprocs(self) -> int:
        return self.pgrid[0] * self.pgrid[1]

    def coords(self, rank: int) -> tuple[int, int]:
        return (rank // self.pgrid[1], rank % self.pgrid[1])

    def rank_of(self, py: int, pz: int) -> int:
        return py * self.pgrid[1] + pz

    def tile(self, rank: int) -> tuple[DimBlock, DimBlock]:
        py, pz = self.coords(rank)
        ylo, yhi = self.y_ranges[py]
        zlo, zhi = self.z_ranges[pz]
        return (
            DimBlock(ylo, yhi, self.shape[1], self.ghost),
            DimBlock(zlo, zhi, self.shape[2], self.ghost),
        )

    def neighbor(self, rank: int, dim: int, delta: int) -> int | None:
        """Rank offset by *delta* along proc dim (0=y, 1=z); None off-grid."""
        py, pz = self.coords(rank)
        if dim == 0:
            py += delta
        else:
            pz += delta
        if 0 <= py < self.pgrid[0] and 0 <= pz < self.pgrid[1]:
            return self.rank_of(py, pz)
        return None


class BlockDecomp1D:
    """z-only BLOCK decomposition used by the PGI-style codes."""

    def __init__(self, shape: tuple[int, int, int], nprocs: int, ghost: int = 2, axis: int = 2):
        self.shape = shape
        self.nprocs = nprocs
        self.ghost = ghost
        self.axis = axis
        self.ranges = block_ranges(shape[axis], nprocs)

    def tile(self, rank: int) -> DimBlock:
        lo, hi = self.ranges[rank]
        return DimBlock(lo, hi, self.shape[self.axis], self.ghost)

    def neighbor(self, rank: int, delta: int) -> int | None:
        r = rank + delta
        return r if 0 <= r < self.nprocs else None


def chunk_ranges(n: int, width: int) -> list[tuple[int, int]]:
    """Split [0, n) into chunks of *width* (inclusive lo, hi) — the
    coarse-grain pipelining granularity knob."""
    if width <= 0:
        width = n
    return [(lo, min(lo + width - 1, n - 1)) for lo in range(0, n, width)]
