"""Reduction recognition — one of dHPF's core optimizations (§2 lists it
alongside communication vectorization and overlap areas).

A statement ``s = s ⊕ e`` (⊕ associative-commutative: +, *, min, max)
whose accumulator is not otherwise read or written in the loop is a
reduction: each processor accumulates a private partial over its share of
the iterations and a combining step (allreduce) merges them.  dHPF uses
this to parallelize loops that a pure dependence test would serialize
(the carried flow dependence on the accumulator is benign).

:func:`find_reductions` performs the recognition;
:func:`parallel_iterations_with_reductions` answers "is this loop parallel
once recognized reductions are accounted for?" — the NAS error-norm and
rhs-norm loops are the motivating cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..ir.expr import ArrayRef, BinOp, Expr, FuncCall, Var
from ..ir.stmt import Assign, DoLoop
from ..ir.visit import reads_of, walk_stmts
from .dependence import DependenceAnalyzer

#: associative-commutative operators we recognize
_AC_BINOPS = {"+", "*"}
_AC_FUNCS = {"min", "max", "dmin1", "dmax1"}


@dataclass(frozen=True)
class Reduction:
    """One recognized reduction statement."""

    stmt: Assign
    var: str
    op: str  # '+', '*', 'min', 'max'

    def __repr__(self) -> str:
        return f"<Reduction {self.var} {self.op}= ... at s{self.stmt.sid}>"


def _match_reduction_rhs(lhs_name: str, rhs: Expr) -> Optional[str]:
    """Does ``rhs`` have the shape ``lhs ⊕ e`` (or ``e ⊕ lhs``)?

    The accumulator must appear exactly once at the top of the ⊕ spine.
    """
    def mentions(e: Expr) -> int:
        return sum(
            1 for n in e.walk() if isinstance(n, Var) and n.name.lower() == lhs_name
        )

    if isinstance(rhs, BinOp) and rhs.op in _AC_BINOPS:
        # allow a left-leaning spine of the same operator: ((s + a) + b)
        spine_op = rhs.op
        node = rhs
        while isinstance(node, BinOp) and node.op == spine_op:
            if mentions(node.right):
                return None  # accumulator buried on the right
            node = node.left
        if isinstance(node, Var) and node.name.lower() == lhs_name:
            if mentions(rhs) == 1:
                return spine_op
        return None
    if isinstance(rhs, FuncCall) and rhs.name.lower() in _AC_FUNCS:
        hits = [a for a in rhs.args if isinstance(a, Var) and a.name.lower() == lhs_name]
        if len(hits) == 1 and mentions(rhs) == 1:
            return "min" if "min" in rhs.name.lower() else "max"
    return None


def find_reductions(loop: DoLoop) -> list[Reduction]:
    """Recognize reduction statements in a loop nest.

    Requirements: scalar accumulator; rhs of the matching shape; the
    accumulator read/written nowhere else in the loop.
    """
    assigns = [s for s in walk_stmts([loop]) if isinstance(s, Assign)]
    out: list[Reduction] = []
    for stmt in assigns:
        if not isinstance(stmt.lhs, Var):
            continue
        name = stmt.lhs.name.lower()
        op = _match_reduction_rhs(name, stmt.rhs)
        if op is None:
            continue
        clean = True
        for other in assigns:
            if other is stmt:
                continue
            if other.target_name.lower() == name:
                clean = False
                break
            if any(
                isinstance(r, Var) and r.name.lower() == name for r in reads_of(other)
            ):
                clean = False
                break
        if clean:
            out.append(Reduction(stmt, name, op))
    return out


def parallel_with_reductions(
    loop: DoLoop, params: Mapping[str, int] | None = None
) -> tuple[bool, list[Reduction]]:
    """Is the loop's outermost level parallel once reductions are handled?

    Returns (parallel?, recognized reductions).  The dependence test runs
    with the accumulator variables excluded; any remaining level-1
    dependence means genuinely serial.
    """
    reds = find_reductions(loop)
    ignore = [r.var for r in reds]
    deps = DependenceAnalyzer(loop, params, ignore_vars=ignore).dependences()
    parallel = not any(d.level == 1 for d in deps)
    return parallel, reds
