"""Privatizability analysis — validating (and discovering) NEW variables.

An array (or scalar) is *privatizable* on a loop when every element read in
an iteration was written earlier in the *same* iteration, and no value
assigned inside the loop is live after it (§4.1).  HPF's NEW directive
asserts this; dHPF still needs the analysis both to sanity-check the
directive and to discover privatizable temporaries the user did not mark.

Memory-based dependence edges cannot prove this (without array kill
analysis, the write in iteration *i* appears to reach reads in iteration
*i+1* even though it is always overwritten first).  We instead use the
classic coverage formulation à la Tu & Padua, computed with integer sets:

    for every read site R of v inside loop L:
        elements_read(R, iteration) ⊆ ⋃ elements_written(W, iteration)
                                        for writes W textually before R

with the L-iteration symbolic.  Textual order is a sound approximation of
same-iteration execution order for the structured (goto-free) bodies the
mini-frontend accepts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..ir.expr import ArrayRef, Var, to_affine
from ..ir.stmt import Assign, DoLoop, Stmt
from ..ir.visit import build_parent_map, enclosing_loops, reads_of, walk_stmts
from ..isets import BasicSet, Constraint, ISet, LinExpr
from ..isets.terms import E


def ref_element_set(
    ref: ArrayRef | Var,
    stmt: Stmt,
    region_loop: DoLoop,
    parents: dict[int, Stmt | None],
    params: Mapping[str, int] | None = None,
) -> ISet | None:
    """Elements of ``ref`` touched during ONE iteration of *region_loop*.

    The result is an ISet over element dims ``e$k``; inner loop variables
    are existentially projected out, while ``region_loop``'s own index and
    anything outer remain free symbolic parameters.  Returns None if any
    subscript or inner bound is non-affine.
    """
    if isinstance(ref, Var):
        return ISet(("e$0",), [BasicSet(("e$0",), [Constraint.eq(E("e$0"), 0)])])
    subs = ref.affine_subscripts()
    if subs is None:
        return None
    loops = enclosing_loops(stmt, parents)
    if region_loop in loops:
        inner = loops[loops.index(region_loop) + 1 :]
    else:
        inner = loops  # stmt deeper than the region head: treat all as inner
    dims = tuple(f"e${k}" for k in range(len(subs)))
    cons: list[Constraint] = []
    for k, e in enumerate(subs):
        cons.append(Constraint.eq(E(dims[k]), e))
    for l in inner:
        lo, hi = to_affine(l.lo), to_affine(l.hi)
        step = to_affine(l.step)
        if lo is None or hi is None or step is None or not step.is_constant() or step.constant != 1:
            return None
        cons.append(Constraint.ge(E(l.var), lo))
        cons.append(Constraint.le(E(l.var), hi))
    if params:
        binding = {k: LinExpr.const(v) for k, v in params.items()}
        cons = [c.substitute(binding) for c in cons]
    bs = BasicSet(dims, cons, exists=[l.var for l in inner])
    return ISet(dims, [bs.eliminate_exists()])


def check_privatizable(
    loop: DoLoop,
    var: str,
    params: Mapping[str, int] | None = None,
) -> bool:
    """Is *var* privatizable on *loop*? (see module docstring)."""
    var = var.lower()
    parents = build_parent_map([loop])
    order = {s.sid: i for i, s in enumerate(walk_stmts([loop]))}

    read_sites: list[tuple[Stmt, ArrayRef | Var]] = []
    write_sites: list[tuple[Stmt, ArrayRef | Var]] = []
    for s in walk_stmts(loop.body):
        if isinstance(s, Assign) and s.lhs.name.lower() == var:
            write_sites.append((s, s.lhs))
        for r in reads_of(s):
            if isinstance(r, (ArrayRef, Var)) and r.name.lower() == var:
                # skip loop-index vars masquerading as scalars
                if isinstance(r, Var) and any(
                    l.var == r.name for l in enclosing_loops(s, parents)
                ):
                    continue
                read_sites.append((s, r))

    if not read_sites:
        return bool(write_sites)  # write-only temp: trivially privatizable

    for rstmt, rref in read_sites:
        rset = ref_element_set(rref, rstmt, loop, parents, params)
        if rset is None:
            return False
        covered: ISet | None = None
        for wstmt, wref in write_sites:
            if order[wstmt.sid] >= order[rstmt.sid]:
                continue
            wset = ref_element_set(wref, wstmt, loop, parents, params)
            if wset is None:
                return False
            covered = wset if covered is None else covered.union(wset)
        if covered is None or not rset.is_subset(covered):
            return False
    return True


def privatizable_candidates(
    loop: DoLoop,
    arrays: Iterable[str],
    params: Mapping[str, int] | None = None,
) -> list[str]:
    """Subset of *arrays* that the analysis can prove privatizable on *loop*."""
    return [a for a in arrays if check_privatizable(loop, a, params)]


def written_vars(loop: DoLoop) -> set[str]:
    """Names assigned anywhere in the loop body."""
    return {
        s.lhs.name.lower()
        for s in walk_stmts(loop.body)
        if isinstance(s, Assign)
    }
