"""Program analyses: dependences, privatization, data availability.

These are the dHPF analyses that feed computation partitioning:

- :mod:`.dependence` — exact affine dependence testing via the integer set
  framework (direction classified per common-loop level, plus
  loop-independent edges, which drive §5's communication-sensitive loop
  distribution).
- :mod:`.privatize` — validation of HPF NEW directives (is the array really
  privatizable on the loop?).
- :mod:`.availability` — §7's data availability analysis: a non-local read
  whose data was already produced locally by the last non-local write needs
  no communication.
"""

from .dependence import Dependence, DependenceAnalyzer, analyze_loop_dependences
from .privatize import check_privatizable, privatizable_candidates

__all__ = [
    "Dependence",
    "DependenceAnalyzer",
    "analyze_loop_dependences",
    "check_privatizable",
    "privatizable_candidates",
]
