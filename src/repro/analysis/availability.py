"""§7 — Data availability analysis.

dHPF's communication model says the *owner* always holds the authoritative
value, so a non-local read normally fetches from the owner.  But when the
reading processor itself produced the value (a non-local *write* under a
non-owner CP), the data is already available locally and the fetch — which
in SP's pipelined solves flows *against* the pipeline and wrecks it — can
be eliminated.

For each non-local read reference R we find the last write W producing the
values R consumes (the deepest flow dependence into R; kill analysis is
unavailable so only the last write is considered, exactly the paper's
conservative choice) and test, symbolically over the representative
processor's coordinates,

    nonLocalReadData(R)  ⊆  nonLocalWriteData(W).

Containment ⇒ the communication for R is redundant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..cp.model import CP, cp_iteration_set
from ..cp.nest import NestInfo, access_data_set
from ..cp.select import StatementCP
from ..distrib.layout import DistributionContext
from ..ir.expr import ArrayRef
from ..ir.stmt import Assign, DoLoop
from ..ir.visit import collect_array_refs, walk_stmts
from ..isets import ISet
from .dependence import Dependence, DependenceAnalyzer


@dataclass
class AvailabilityDecision:
    """Outcome for one non-local read reference."""

    stmt: Assign
    ref: ArrayRef
    nonlocal_read: ISet
    covering_write: Optional[Assign]
    eliminated: bool

    def __repr__(self) -> str:
        verdict = "ELIMINATED" if self.eliminated else "kept"
        return f"<Avail s{self.stmt.sid} {self.ref}: {verdict}>"


class AvailabilityAnalyzer:
    """Runs the §7 analysis over one loop nest with CPs already selected."""

    def __init__(
        self,
        root: DoLoop,
        cps: Mapping[int, StatementCP],
        ctx: DistributionContext,
        params: Mapping[str, int] | None = None,
    ):
        self.root = root
        self.cps = cps
        self.ctx = ctx
        self.params = dict(params or {})
        self.nest = NestInfo(root, self.params)
        self.deps = DependenceAnalyzer(root, self.params).dependences()

    # -- per-reference sets -------------------------------------------------
    def nonlocal_read_set(self, stmt: Assign, ref: ArrayRef) -> Optional[ISet]:
        """Data of *ref* read by the representative processor but not owned
        by it (symbolic in the processor coordinates)."""
        layout = self.ctx.layout(ref.name)
        if layout is None:
            return None
        scp = self.cps.get(stmt.sid)
        if scp is None:
            return None
        dims = self.nest.dims_of(stmt)
        bounds = self.nest.bounds_of(stmt)
        if bounds is None:
            return None
        iters = cp_iteration_set(scp.cp, dims, bounds.bind(self.params), self.ctx)
        data = access_data_set(ref, iters, dims)
        if data is None:
            return None
        return data.subtract(layout.ownership())

    def nonlocal_write_set(self, stmt: Assign) -> Optional[ISet]:
        """Data written by the representative processor that it does not own."""
        if not isinstance(stmt.lhs, ArrayRef):
            return None
        return self.nonlocal_read_set_for_lhs(stmt)

    def nonlocal_read_set_for_lhs(self, stmt: Assign) -> Optional[ISet]:
        layout = self.ctx.layout(stmt.lhs.name)
        if layout is None:
            return None
        scp = self.cps.get(stmt.sid)
        if scp is None:
            return None
        dims = self.nest.dims_of(stmt)
        bounds = self.nest.bounds_of(stmt)
        if bounds is None:
            return None
        iters = cp_iteration_set(scp.cp, dims, bounds.bind(self.params), self.ctx)
        data = access_data_set(stmt.lhs, iters, dims)
        if data is None:
            return None
        return data.subtract(layout.ownership())

    # -- last write -----------------------------------------------------------
    def last_write_into(self, stmt: Assign, ref: ArrayRef) -> Optional[Assign]:
        """The deepest flow dependence whose sink is this read reference."""
        best: tuple[int, int, Assign] | None = None
        for d in self.deps:
            if d.kind != "flow" or d.dst.sid != stmt.sid:
                continue
            if d.dst_ref is not ref:
                continue
            if not isinstance(d.src, Assign):
                continue
            # deepest dependence wins; textual order breaks ties (the later
            # statement in the body is the later writer within an iteration)
            key = (d.level, self.nest.order.get(d.src.sid, 0))
            if best is None or key > best[:2]:
                best = (key[0], key[1], d.src)
        return best[2] if best else None

    # -- main ----------------------------------------------------------------
    def analyze(self) -> list[AvailabilityDecision]:
        out: list[AvailabilityDecision] = []
        for stmt in walk_stmts([self.root]):
            if not isinstance(stmt, Assign):
                continue
            for ref in collect_array_refs(stmt.rhs):
                nl = self.nonlocal_read_set(stmt, ref)
                if nl is None or nl.is_empty():
                    continue
                w = self.last_write_into(stmt, ref)
                if w is None:
                    out.append(AvailabilityDecision(stmt, ref, nl, None, False))
                    continue
                wset = self.nonlocal_write_set(w)
                elim = wset is not None and nl.is_subset(wset)
                out.append(AvailabilityDecision(stmt, ref, nl, w, elim))
        return out

    def eliminated_refs(self) -> set[tuple[int, ArrayRef]]:
        return {
            (d.stmt.sid, d.ref) for d in self.analyze() if d.eliminated
        }
