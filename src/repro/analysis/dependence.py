"""Exact affine dependence analysis over the integer set framework.

For each pair of references to the same variable (at least one a write)
inside a loop nest, we build the symbolic set of iteration pairs
``(source, sink)`` satisfying

* both iterations inside their loop bounds,
* equal subscripts (the references touch the same element), and
* execution order: source strictly before sink.

The order condition is split by *level*: carried at common-loop level l
(equal outer indices, strictly increasing at l), or loop-independent (all
common indices equal, source textually precedes sink).  Each non-empty level
yields one :class:`Dependence` edge.  Non-affine subscripts or bounds fall
back to a conservative "assume dependence at every level".

Scalars are rank-0 arrays: they depend at every level unless privatized.

The level semantics are a load-bearing contract for the vectorizing
backend (`repro.codegen.vectorize`): it distributes loops and emits N-d
blocks based on *which* level carries each edge (and on the exactness of
"no edge at level l" answers — conservative fallbacks only ever add
edges, so they can only suppress vectorization, never unsoundly enable
it).  ``ignore_vars`` exists for the same client: scalars it privatizes
by expansion are excluded from the scalar-dependence rule above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..ir.expr import ArrayRef, Expr, Var, to_affine
from ..ir.stmt import Assign, DoLoop, Stmt
from ..ir.visit import (
    build_parent_map,
    enclosing_loops,
    reads_of,
    walk_stmts,
)
from ..isets import BasicSet, Constraint, ISet, LinExpr
from ..isets.terms import E

LI = 0  #: level value for loop-independent dependences


@dataclass(frozen=True)
class Dependence:
    """One dependence edge.

    ``level`` is 1-based depth of the carrying loop *within the analyzed
    nest's common loops*, or :data:`LI` (0) for loop-independent.
    """

    src: Stmt
    dst: Stmt
    var: str
    kind: str  # 'flow' | 'anti' | 'output'
    level: int
    src_ref: ArrayRef | Var | None = None
    dst_ref: ArrayRef | Var | None = None

    @property
    def loop_independent(self) -> bool:
        return self.level == LI

    def __repr__(self) -> str:
        lvl = "LI" if self.loop_independent else f"L{self.level}"
        return (
            f"Dep({self.kind} {self.var} {lvl}: "
            f"s{self.src.sid}[{self.src_ref}] -> s{self.dst.sid}[{self.dst_ref}])"
        )


@dataclass
class _RefSite:
    stmt: Stmt
    ref: ArrayRef | Var
    is_write: bool
    loops: list[DoLoop]  # enclosing loops within the analyzed nest, outer first
    order: int  # textual preorder position


class DependenceAnalyzer:
    """Dependence analysis for one loop nest (or any statement region)."""

    def __init__(
        self,
        region: Sequence[Stmt] | DoLoop,
        params: Mapping[str, int] | None = None,
        ignore_vars: Iterable[str] = (),
    ):
        if isinstance(region, DoLoop):
            self.region: list[Stmt] = [region]
        else:
            self.region = list(region)
        self.params = dict(params or {})
        self.ignore = {v.lower() for v in ignore_vars}
        self.parents = build_parent_map(self.region)
        self._order: dict[int, int] = {}
        for i, s in enumerate(walk_stmts(self.region)):
            self._order[s.sid] = i

    # -- site collection ---------------------------------------------------
    def _sites(self) -> dict[str, list[_RefSite]]:
        """Reference sites grouped by variable name."""
        by_var: dict[str, list[_RefSite]] = {}

        def add(stmt: Stmt, ref: ArrayRef | Var, is_write: bool) -> None:
            name = ref.name.lower()
            if name in self.ignore:
                return
            loops = enclosing_loops(stmt, self.parents)
            by_var.setdefault(name, []).append(
                _RefSite(stmt, ref, is_write, loops, self._order[stmt.sid])
            )

        for stmt in walk_stmts(self.region):
            if isinstance(stmt, Assign):
                add(stmt, stmt.lhs, True)
                for r in reads_of(stmt):
                    # loop index variables are not data refs
                    if isinstance(r, Var) and self._is_loop_index(r.name, stmt):
                        continue
                    add(stmt, r, False)
            elif isinstance(stmt, DoLoop):
                # bound expressions read scalars; they rarely matter for the
                # NAS kernels — skip to keep edge count meaningful.
                continue
        return by_var

    def _is_loop_index(self, name: str, stmt: Stmt) -> bool:
        return any(l.var == name for l in enclosing_loops(stmt, self.parents)) or any(
            isinstance(s, DoLoop) and s.var == name for s in walk_stmts(self.region)
        )

    # -- main entry ----------------------------------------------------------
    def dependences(self, scalars: bool = True) -> list[Dependence]:
        out: list[Dependence] = []
        for var, sites in self._sites().items():
            writes = [s for s in sites if s.is_write]
            if not writes:
                continue
            for a in sites:
                for b in sites:
                    if not (a.is_write or b.is_write):
                        continue
                    is_scalar = isinstance(a.ref, Var) or (
                        isinstance(a.ref, ArrayRef) and a.ref.rank == 0
                    )
                    if is_scalar and not scalars:
                        continue
                    kind = (
                        "flow" if a.is_write and not b.is_write
                        else "anti" if not a.is_write and b.is_write
                        else "output" if a.is_write and b.is_write
                        else "input"
                    )
                    if kind == "input":
                        continue
                    out.extend(self._test_pair(var, a, b, kind))
        return out

    # -- pair test -------------------------------------------------------------
    def _test_pair(self, var: str, a: _RefSite, b: _RefSite, kind: str) -> list[Dependence]:
        common: list[DoLoop] = []
        for la, lb in zip(a.loops, b.loops):
            if la is lb:
                common.append(la)
            else:
                break
        ncommon = len(common)
        deps: list[Dependence] = []

        sys = self._build_system(a, b, common)
        if sys is None:
            # non-affine: conservative — all levels + LI if order allows
            for l in range(1, ncommon + 1):
                deps.append(Dependence(a.stmt, b.stmt, var, kind, l, a.ref, b.ref))
            if a.order < b.order or (a.stmt is not b.stmt and a.order == b.order):
                deps.append(Dependence(a.stmt, b.stmt, var, kind, LI, a.ref, b.ref))
            return deps

        dims, cons = sys
        # carried at each common level
        for l in range(1, ncommon + 1):
            extra: list[Constraint] = []
            for k in range(l - 1):
                extra.append(Constraint.eq(E(_sv(k)), E(_dv(k))))
            extra.append(Constraint.ge(E(_dv(l - 1)), E(_sv(l - 1)) + 1))
            if not ISet(dims, [BasicSet(dims, cons + extra)]).is_empty():
                deps.append(Dependence(a.stmt, b.stmt, var, kind, l, a.ref, b.ref))
        # loop-independent: same common iteration, a textually before b
        if a.order < b.order:
            extra = [Constraint.eq(E(_sv(k)), E(_dv(k))) for k in range(ncommon)]
            if not ISet(dims, [BasicSet(dims, cons + extra)]).is_empty():
                deps.append(Dependence(a.stmt, b.stmt, var, kind, LI, a.ref, b.ref))
        return deps

    def _build_system(
        self, a: _RefSite, b: _RefSite, common: list[DoLoop]
    ) -> tuple[tuple[str, ...], list[Constraint]] | None:
        """Dims + constraints for (src-iter, dst-iter) pairs touching the
        same element.  None when anything is non-affine."""
        cons: list[Constraint] = []
        src_map = self._loop_binding(a.loops, _sv, cons)
        dst_map = self._loop_binding(b.loops, _dv, cons)
        if src_map is None or dst_map is None:
            return None
        # same element
        if isinstance(a.ref, ArrayRef) and isinstance(b.ref, ArrayRef):
            sa, sb = a.ref.affine_subscripts(), b.ref.affine_subscripts()
            if sa is None or sb is None:
                return None
            if len(sa) != len(sb):
                return None
            for ea, eb in zip(sa, sb):
                cons.append(
                    Constraint.eq(ea.substitute(src_map), eb.substitute(dst_map))
                )
        # scalars: always the same location — no subscript constraints
        dims = tuple(_sv(k) for k in range(len(a.loops))) + tuple(
            _dv(k) for k in range(len(b.loops))
        )
        # substitute known parameters for tighter tests
        if self.params:
            cons = [c.substitute({k: LinExpr.const(v) for k, v in self.params.items()}) for c in cons]
        return dims, cons

    def _loop_binding(
        self, loops: list[DoLoop], namer, cons: list[Constraint]
    ) -> dict[str, LinExpr] | None:
        """Rename loop vars to fresh dims; append bound constraints (which may
        reference outer renamed vars).  Requires unit steps."""
        binding: dict[str, LinExpr] = {}
        for k, loop in enumerate(loops):
            step = to_affine(loop.step)
            if step is None or not step.is_constant() or step.constant != 1:
                return None
            lo, hi = to_affine(loop.lo), to_affine(loop.hi)
            if lo is None or hi is None:
                return None
            v = E(namer(k))
            cons.append(Constraint.ge(v, lo.substitute(binding)))
            cons.append(Constraint.le(v, hi.substitute(binding)))
            binding[loop.var] = v
        return binding


def _sv(k: int) -> str:
    return f"s${k}"


def _dv(k: int) -> str:
    return f"d${k}"


def analyze_loop_dependences(
    loop: DoLoop,
    params: Mapping[str, int] | None = None,
    ignore_vars: Iterable[str] = (),
    scalars: bool = True,
) -> list[Dependence]:
    """All dependences among statements of one loop nest."""
    return DependenceAnalyzer(loop, params, ignore_vars).dependences(scalars=scalars)


def loop_independent_deps(
    loop: DoLoop,
    params: Mapping[str, int] | None = None,
    ignore_vars: Iterable[str] = (),
) -> list[Dependence]:
    """Only the loop-independent edges (input to §5's CP grouping)."""
    return [d for d in analyze_loop_dependences(loop, params, ignore_vars) if d.loop_independent]


def carries_dependence(loop: DoLoop, params: Mapping[str, int] | None = None,
                       ignore_vars: Iterable[str] = ()) -> bool:
    """Does the outermost loop of this nest carry any dependence?

    A loop carrying no level-1 dependence is fully parallel — dHPF detects
    parallelism in the serial code automatically rather than relying on
    INDEPENDENT (§8.1).
    """
    return any(
        d.level == 1 for d in analyze_loop_dependences(loop, params, ignore_vars)
    )
