"""Affine maps between tuple spaces.

An :class:`AffineMap` sends ``[i1..im] -> [e1(i)..en(i)]`` where each output
coordinate is an affine expression of the input dims and free parameters.
The compiler uses maps for

* reference access functions (iteration space -> data space),
* CP translation from a use to a definition (the 1-1 linear subscript
  mapping of §4.1, inverted and applied to ON_HOME subscripts), and
* alignment functions (array space -> template space).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from .core import BasicSet, Constraint
from .iset import ISet
from .terms import LinExpr, E


class AffineMap:
    """``[in_dims] -> [exprs]`` with affine coordinate expressions."""

    __slots__ = ("in_dims", "exprs")

    def __init__(self, in_dims: Sequence[str], exprs: Sequence[LinExpr | int | str]):
        self.in_dims: tuple[str, ...] = tuple(in_dims)
        self.exprs: tuple[LinExpr, ...] = tuple(E(e) for e in exprs)

    @staticmethod
    def identity(dims: Sequence[str]) -> "AffineMap":
        return AffineMap(dims, [E(d) for d in dims])

    @property
    def out_arity(self) -> int:
        return len(self.exprs)

    @property
    def in_arity(self) -> int:
        return len(self.in_dims)

    def __call__(self, point: Sequence[int], params: Mapping[str, int] | None = None) -> tuple[int, ...]:
        binding = dict(zip(self.in_dims, point))
        if params:
            binding.update(params)
        return tuple(e.evaluate(binding) for e in self.exprs)

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """``self ∘ inner``: first apply *inner*, then *self*."""
        if self.in_arity != inner.out_arity:
            raise ValueError("arity mismatch in composition")
        binding = dict(zip(self.in_dims, inner.exprs))
        return AffineMap(inner.in_dims, [e.substitute(binding) for e in self.exprs])

    def is_invertible(self) -> bool:
        try:
            self.inverse()
            return True
        except ValueError:
            return False

    def inverse(self) -> "AffineMap":
        """Invert a map that is a permuted-unit-coefficient bijection.

        Supports the common HPF case where each output expression mentions
        exactly one *distinct* input dim with coefficient ±1 (e.g.
        ``[i,j] -> [j-1, i+2]``).  Raises ValueError otherwise.
        """
        if self.in_arity != self.out_arity:
            raise ValueError("only square maps can be inverted")
        out_names = [f"o{k}" for k in range(self.out_arity)]
        solution: dict[str, LinExpr] = {}
        used_inputs: set[str] = set()
        for k, e in enumerate(self.exprs):
            dims_in_e = [d for d in self.in_dims if e.coeff(d) != 0]
            if len(dims_in_e) != 1:
                raise ValueError(f"output {k} mentions {len(dims_in_e)} input dims; not 1-1")
            d = dims_in_e[0]
            if d in used_inputs:
                raise ValueError(f"input dim {d} used by two outputs; not 1-1")
            used_inputs.add(d)
            a = e.coeff(d)
            if a not in (1, -1):
                raise ValueError(f"non-unit coefficient {a} on {d}")
            rest = e - LinExpr({d: a})
            # o_k = a*d + rest  =>  d = a*(o_k - rest)   (a = ±1)
            solution[d] = (E(out_names[k]) - rest) * a
        missing = set(self.in_dims) - used_inputs
        if missing:
            raise ValueError(f"input dims {sorted(missing)} unused; not invertible")
        return AffineMap(out_names, [solution[d] for d in self.in_dims])

    def image(self, s: ISet, out_dims: Sequence[str] | None = None) -> ISet:
        """Apply the map to a set: ``{ f(x) : x in s }``.

        Implemented by introducing output dims constrained to the coordinate
        expressions and projecting away the inputs.  Exact when projection is
        exact (unit coefficients — always true for HPF subscripts).
        """
        if s.dims != self.in_dims:
            s = s.with_dims(self.in_dims)
        out_dims = tuple(out_dims or (f"o{k}" for k in range(self.out_arity)))
        parts = []
        for p in s.parts:
            cons = list(p.constraints)
            for od, e in zip(out_dims, self.exprs):
                cons.append(Constraint.eq(E(od), e))
            combined = BasicSet(tuple(self.in_dims) + out_dims, cons, p.exists, p.exact)
            parts.append(combined.project_out(self.in_dims))
        return ISet(out_dims, parts)

    def preimage(self, s: ISet, in_dims: Sequence[str] | None = None) -> ISet:
        """``{ x : f(x) in s }`` — substitute coordinates into s's constraints."""
        if len(s.dims) != self.out_arity:
            raise ValueError("arity mismatch in preimage")
        in_dims = tuple(in_dims or self.in_dims)
        me = self if in_dims == self.in_dims else AffineMap(
            in_dims, [e.rename(dict(zip(self.in_dims, in_dims))) for e in self.exprs]
        )
        binding = dict(zip(s.dims, me.exprs))
        parts = []
        for p in s.parts:
            cons = [c.substitute(binding) for c in p.constraints]
            parts.append(BasicSet(in_dims, cons, p.exists, p.exact))
        return ISet(in_dims, parts)

    def rename_inputs(self, mapping: Mapping[str, str]) -> "AffineMap":
        return AffineMap(
            tuple(mapping.get(d, d) for d in self.in_dims),
            [e.rename(mapping) for e in self.exprs],
        )

    def substitute_params(self, binding: Mapping[str, LinExpr | int]) -> "AffineMap":
        binding = {k: v for k, v in binding.items() if k not in self.in_dims}
        return AffineMap(self.in_dims, [e.substitute(binding) for e in self.exprs])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineMap)
            and self.in_dims == other.in_dims
            and self.exprs == other.exprs
        )

    def __hash__(self) -> int:
        return hash((self.in_dims, self.exprs))

    def __str__(self) -> str:
        return f"[{','.join(self.in_dims)}] -> [{', '.join(map(str, self.exprs))}]"

    __repr__ = __str__
