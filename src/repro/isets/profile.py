"""Compile-time profiling: phase-scoped wall timers with iset-counter
attribution.

The compiler's cost is dominated by symbolic set work (interning,
emptiness proofs, point enumeration), so a useful profile must say *which
phase* spent the sets, not just how many were spent overall.  This module
keeps a stack of named phases; entering a phase snapshots the process-wide
:data:`~repro.isets.core.CACHE_STATS` counters and leaving attributes the
delta (inclusive of children) to that phase.  Phases with the same name
under the same parent accumulate, so per-nest loops collapse into one row.

The profiler is off by default and costs one global ``None`` check per
:func:`phase` entry when inactive, so instrumentation can stay in the hot
paths permanently.  Typical use::

    with profiled("compile") as prof:
        compile_kernel(...)
    print(prof.report())

``python -m repro.eval profile`` drives this over the benchmark kernels,
and ``diffstats`` includes the per-phase table for its instrumented
compiles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .core import CACHE_STATS, pool_info

#: counters worth a column in the report (subset of CacheStats slots)
_REPORT_COUNTERS = (
    "constraint_misses",
    "empty_misses",
    "empty_fast",
    "enum_fast",
    "enum_scan",
)


class PhaseStats:
    """One node of the phase tree: inclusive wall time + counter deltas."""

    __slots__ = ("name", "seconds", "calls", "counters", "children", "_t0", "_snap")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.counters: dict[str, int] = {}
        self.children: dict[str, PhaseStats] = {}
        self._t0 = 0.0
        self._snap: dict[str, int] = {}

    def _enter(self) -> None:
        self.calls += 1
        self._t0 = time.perf_counter()
        self._snap = CACHE_STATS.snapshot()

    def _exit(self) -> None:
        self.seconds += time.perf_counter() - self._t0
        after = CACHE_STATS.snapshot()
        for key, value in CACHE_STATS.delta(after, self._snap).items():
            self.counters[key] = self.counters.get(key, 0) + value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "calls": self.calls,
            "counters": dict(self.counters),
            "children": [c.as_dict() for c in self.children.values()],
        }


class CompileProfile:
    """A profiling session: a tree of :class:`PhaseStats` plus pool state."""

    def __init__(self, name: str = "total"):
        self.root = PhaseStats(name)
        self._stack: list[PhaseStats] = [self.root]

    # -- recording ---------------------------------------------------------
    def _push(self, name: str) -> PhaseStats:
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = PhaseStats(name)
        node._enter()
        self._stack.append(node)
        return node

    def _pop(self) -> None:
        self._stack.pop()._exit()

    # -- reporting ---------------------------------------------------------
    def as_dict(self) -> dict:
        return {"phases": self.root.as_dict(), "pool": pool_info()}

    def report(self) -> str:
        """Formatted phase tree: wall seconds, self-share, key counters."""
        lines = [
            f"{'phase':<34} {'seconds':>8} {'self':>8} "
            + " ".join(f"{c.replace('constraint_', 'cons_'):>12}" for c in _REPORT_COUNTERS)
        ]

        def walk(node: PhaseStats, depth: int) -> None:
            child_secs = sum(c.seconds for c in node.children.values())
            self_secs = max(node.seconds - child_secs, 0.0)
            label = "  " * depth + node.name
            if node.calls > 1:
                label += f" x{node.calls}"
            lines.append(
                f"{label:<34} {node.seconds:>8.3f} {self_secs:>8.3f} "
                + " ".join(f"{node.counters.get(c, 0):>12}" for c in _REPORT_COUNTERS)
            )
            for child in node.children.values():
                walk(child, depth + 1)

        walk(self.root, 0)
        pool = pool_info()
        stats = CACHE_STATS.as_dict()
        lines.append(
            "pool: "
            f"intern {pool['constraint_intern']}/{pool['constraint_intern_max']}, "
            f"empty {pool['empty_cache']}/{pool['empty_cache_max']}, "
            f"subsume {pool['subsume_cache']}/{pool['subsume_cache_max']}, "
            f"epoch {pool['epoch']}"
        )
        lines.append(
            "hit rates: "
            f"constraint {stats['constraint_hit_rate']:.1%} "
            f"(cross-kernel {stats['constraint_cross_hits']}), "
            f"empty {stats['empty_hit_rate']:.1%} "
            f"(cross-kernel {stats['empty_cross_hits']}, fast-path {stats['empty_fast']}), "
            f"subsume {stats['subsume_hit_rate']:.1%}"
        )
        return "\n".join(lines)


_ACTIVE_PROFILE: CompileProfile | None = None


def active_profile() -> CompileProfile | None:
    """The profile installed by :func:`profiled`, or ``None`` when off."""
    return _ACTIVE_PROFILE


@contextmanager
def profiled(name: str = "total") -> Iterator[CompileProfile]:
    """Install a :class:`CompileProfile` for the duration of the block."""
    global _ACTIVE_PROFILE
    prev = _ACTIVE_PROFILE
    prof = CompileProfile(name)
    prof.root._enter()
    _ACTIVE_PROFILE = prof
    try:
        yield prof
    finally:
        _ACTIVE_PROFILE = prev
        prof.root._exit()


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the enclosed work to *name* under the current phase.

    Near-zero cost when no profile is active (one global check); nested
    phases build the report tree, repeated phases accumulate.
    """
    prof = _ACTIVE_PROFILE
    if prof is None:
        yield
        return
    prof._push(name)
    try:
        yield
    finally:
        prof._pop()
