"""Constraints and basic (conjunctive) integer sets.

A :class:`BasicSet` is ``{ [d1,...,dn] : exists e1..ek . /\\ constraints }``
where constraints are affine equalities/inequalities over the tuple dims,
the existential variables, and any remaining free names, which are treated
as symbolic integer *parameters* (grid size N, processor id ``myid``,
block size, ...).

Projection uses Fourier-Motzkin elimination with Omega-style *dark shadow*
reasoning: elimination is exact whenever one of the combined coefficients is
1 (true for nearly all sets arising in HPF analysis); otherwise the result is
flagged approximate and downstream queries answer conservatively.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from fractions import Fraction
from math import ceil, floor
from typing import Iterable, Iterator, Mapping, Sequence

from .terms import LinExpr, E

# Cap on constraints kept per basic set during elimination; beyond this we
# drop obviously-redundant constraints aggressively.  FM blowup is quadratic
# per step; HPF sets are small (tens of constraints) so this is a backstop.
_MAX_CONSTRAINTS = 400


class CacheStats:
    """Hit/miss counters for the hash-consed set caches (perf telemetry,
    surfaced by ``python -m repro.eval diffstats``, ``profile`` and the
    bench harness).

    ``*_cross_hits`` count reuse of pool entries created during an earlier
    compilation epoch (see :func:`new_epoch`) — the cross-kernel share of
    the hit traffic.  ``empty_fast`` counts emptiness decisions taken by
    the single-variable interval fast path (no Fourier-Motzkin run);
    ``enum_fast``/``enum_scan`` split point enumerations between the
    product fast path and the recursive lattice scan.
    """

    __slots__ = (
        "constraint_hits",
        "constraint_misses",
        "constraint_cross_hits",
        "empty_hits",
        "empty_misses",
        "empty_cross_hits",
        "empty_fast",
        "subsume_hits",
        "subsume_misses",
        "enum_fast",
        "enum_scan",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Raw counter values (for per-phase delta attribution)."""
        return {field: getattr(self, field) for field in self.__slots__}

    @staticmethod
    def delta(after: Mapping[str, int], before: Mapping[str, int]) -> dict:
        return {k: after[k] - before.get(k, 0) for k in after}

    def as_dict(self) -> dict:
        return {
            "constraint_hits": self.constraint_hits,
            "constraint_misses": self.constraint_misses,
            "constraint_hit_rate": self._rate(self.constraint_hits, self.constraint_misses),
            "constraint_cross_hits": self.constraint_cross_hits,
            "empty_hits": self.empty_hits,
            "empty_misses": self.empty_misses,
            "empty_hit_rate": self._rate(self.empty_hits, self.empty_misses),
            "empty_cross_hits": self.empty_cross_hits,
            "empty_fast": self.empty_fast,
            "subsume_hits": self.subsume_hits,
            "subsume_misses": self.subsume_misses,
            "subsume_hit_rate": self._rate(self.subsume_hits, self.subsume_misses),
            "enum_fast": self.enum_fast,
            "enum_scan": self.enum_scan,
        }


CACHE_STATS = CacheStats()

# ---------------------------------------------------------------------------
# Cross-kernel memo pool
#
# The tables below are process-global and deliberately survive across
# compilations: NAS kernels sharing subscript patterns (compute_rhs /
# x_solve / y_solve / z_solve) intern structurally equal constraints and
# prove emptiness of structurally equal basic sets, so one kernel's work
# seeds the next one's.  All keys are *structural* (LinExpr value tuples,
# BasicSet value-hashes over dims/exists/constraints), never object
# identity.  Each table is bounded; on overflow the oldest half is evicted
# (dict insertion order) instead of dropping the whole pool, so a long
# compilation cannot wipe the entries its successors would reuse.
#
# ``new_epoch()`` stamps a compilation boundary; hits on entries created in
# an earlier epoch are counted as cross-kernel reuse (CacheStats
# ``*_cross_hits``) for the profile report.
# ---------------------------------------------------------------------------

# Hash-consing table: raw (LinExpr, is_eq) -> normalized Constraint.  Two
# different raw expressions may normalize to equal constraints; the table is
# a cache keyed by input, not a canonical-instance registry, so `==` (not
# `is`) remains the identity notion.
_CONSTRAINT_INTERN: "dict[tuple[LinExpr, bool], Constraint]" = {}
_INTERN_MAX = 1 << 18

# Value cache for BasicSet.is_empty keyed by set value (dims/exists/
# constraints hash equality), so structurally identical sets built at
# different times share one Fourier-Motzkin run.  Values are
# ``(result, epoch)`` pairs for cross-kernel hit attribution.
_EMPTY_CACHE: "dict[BasicSet, tuple[bool, int]]" = {}
_EMPTY_MAX = 1 << 16

# Memoized disjunct-subsumption verdicts: (smaller, larger) -> bool
# ("every point of `smaller` is in `larger`").  Populated by the union /
# difference normalization in :mod:`repro.isets.iset`.
_SUBSUME_CACHE: "dict[tuple[BasicSet, BasicSet], bool]" = {}
_SUBSUME_MAX = 1 << 16

_EPOCH = 1


def current_epoch() -> int:
    """The active compilation epoch (see :func:`new_epoch`)."""
    return _EPOCH


def new_epoch() -> int:
    """Mark a compilation boundary for cross-kernel hit attribution.

    Called once per kernel compilation; pool entries remain valid across
    epochs (keys are structural), only the hit accounting changes.
    """
    global _EPOCH
    _EPOCH += 1
    return _EPOCH


def _evict_oldest_half(table: dict) -> None:
    """Drop the least-recently-inserted half of a memo table (dicts keep
    insertion order), preserving the newer — more likely live — entries."""
    for key in list(itertools.islice(table, len(table) // 2)):
        del table[key]


def pool_info() -> dict:
    """Sizes and bounds of the cross-kernel memo pool (profile report)."""
    return {
        "constraint_intern": len(_CONSTRAINT_INTERN),
        "constraint_intern_max": _INTERN_MAX,
        "empty_cache": len(_EMPTY_CACHE),
        "empty_cache_max": _EMPTY_MAX,
        "subsume_cache": len(_SUBSUME_CACHE),
        "subsume_cache_max": _SUBSUME_MAX,
        "epoch": _EPOCH,
    }


def cache_stats() -> CacheStats:
    """The process-wide iset cache counters."""
    return CACHE_STATS


def reset_caches() -> None:
    """Drop the hash-consing tables and zero the counters (test isolation)."""
    _CONSTRAINT_INTERN.clear()
    _EMPTY_CACHE.clear()
    _SUBSUME_CACHE.clear()
    CACHE_STATS.reset()


# ---------------------------------------------------------------------------
# Per-compilation resource budgets
# ---------------------------------------------------------------------------

class BudgetExceeded(RuntimeError):
    """An iset resource budget tripped (see :func:`iset_budget`)."""

    def __init__(self, kind: str, spent: int, limit: int):
        self.kind = kind
        self.spent = spent
        self.limit = limit
        super().__init__(f"iset budget exceeded: {kind} {spent} > limit {limit}")


class IsetBudget:
    """Per-compilation budget over symbolic-set work.

    Charges land on the *expensive* events — constraint-normalization misses
    (weight 1) and emptiness-proof Fourier-Motzkin misses (weight
    ``EMPTY_WEIGHT``) — plus the disjunct count of every union built.  When a
    limit is crossed while enforcement is armed, the charge raises
    :class:`BudgetExceeded`; the lenient compiler driver converts that into
    a conservative replicated fallback with a ``W-BUDGET`` diagnostic
    instead of letting the analysis explode combinatorially.

    ``tripped``/``trips`` persist after the first trip for telemetry
    (``python -m repro.eval diffstats``).  ``suspend()`` disables enforcement
    (while still counting) so the driver's own fallback construction cannot
    re-trip the budget.  ``reset_ops()`` restarts the op window — the driver
    grants each loop nest a fresh window after a trip, so one pathological
    nest cannot starve the rest of the compilation.
    """

    EMPTY_WEIGHT = 20  # one FM emptiness run ~ this many constraint interns

    def __init__(self, max_ops: int = 200_000, max_disjuncts: int = 48):
        self.max_ops = max_ops
        self.max_disjuncts = max_disjuncts
        self.ops = 0
        self.peak_disjuncts = 0
        self.tripped: str | None = None
        self.trips = 0
        self._suspended = 0

    # -- charging (called from the cache-miss paths) -----------------------
    def charge_op(self, weight: int = 1) -> None:
        self.ops += weight
        if not self._suspended and self.ops > self.max_ops:
            self._trip("ops", self.ops, self.max_ops)

    def charge_disjuncts(self, n: int) -> None:
        if n > self.peak_disjuncts:
            self.peak_disjuncts = n
        if not self._suspended and n > self.max_disjuncts:
            self._trip("disjuncts", n, self.max_disjuncts)

    def _trip(self, kind: str, spent: int, limit: int) -> None:
        self.trips += 1
        if self.tripped is None:
            self.tripped = kind
        raise BudgetExceeded(kind, spent, limit)

    # -- driver controls ---------------------------------------------------
    def reset_ops(self) -> None:
        self.ops = 0

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Count but do not enforce (used while building the fallback)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def as_dict(self) -> dict:
        return {
            "budget_ops": self.ops,
            "budget_max_ops": self.max_ops,
            "budget_peak_disjuncts": self.peak_disjuncts,
            "budget_max_disjuncts": self.max_disjuncts,
            "budget_trips": self.trips,
            "budget_tripped": self.tripped,
        }


_ACTIVE_BUDGET: IsetBudget | None = None


def active_budget() -> IsetBudget | None:
    """The budget installed by the innermost :func:`iset_budget`, if any."""
    return _ACTIVE_BUDGET


@contextmanager
def iset_budget(budget: IsetBudget) -> "Iterator[IsetBudget]":
    """Install *budget* as the active per-compilation iset budget."""
    global _ACTIVE_BUDGET
    prev = _ACTIVE_BUDGET
    _ACTIVE_BUDGET = budget
    try:
        yield budget
    finally:
        _ACTIVE_BUDGET = prev


class Constraint:
    """``expr == 0`` (is_eq) or ``expr >= 0`` — normalized over the integers.

    Instances are hash-consed: constructing the same (expr, is_eq) twice
    returns the cached normalized object, skipping content/sign
    normalization.  This is purely a cache — equality stays structural.
    """

    __slots__ = ("expr", "is_eq", "_hash", "_epoch")

    def __new__(cls, expr: LinExpr, is_eq: bool):
        expr = LinExpr.of(expr)
        key = (expr, is_eq)
        cached = _CONSTRAINT_INTERN.get(key)
        if cached is not None:
            CACHE_STATS.constraint_hits += 1
            if cached._epoch != _EPOCH:
                CACHE_STATS.constraint_cross_hits += 1
                cached._epoch = _EPOCH
            return cached
        CACHE_STATS.constraint_misses += 1
        if _ACTIVE_BUDGET is not None:
            _ACTIVE_BUDGET.charge_op()
        self = super().__new__(cls)
        self._normalize(expr, is_eq)
        self._epoch = _EPOCH
        if len(_CONSTRAINT_INTERN) >= _INTERN_MAX:
            _evict_oldest_half(_CONSTRAINT_INTERN)
        _CONSTRAINT_INTERN[key] = self
        return self

    def _normalize(self, expr: LinExpr, is_eq: bool) -> None:
        g = expr.content()
        if g > 1:
            const = expr.constant
            if is_eq:
                # g | const is required for integer solutions; if not, the
                # constraint is unsatisfiable — keep it as an impossible
                # constant equality so emptiness detection sees it.
                if const % g == 0:
                    expr = LinExpr({k: v // g for k, v in expr.coeffs.items()}, const // g)
                else:
                    expr = LinExpr.const(1)  # 1 == 0 : impossible
            else:
                # sum(a_i x_i) + c >= 0, g | a_i  =>  sum(a_i/g x_i) + floor(c/g) >= 0
                expr = LinExpr({k: v // g for k, v in expr.coeffs.items()}, floor(const / g))
        if is_eq and expr.coeffs:
            # canonical sign: first (lexicographically smallest) coeff positive
            first = next(iter(expr.coeffs.values()))
            if first < 0:
                expr = -expr
        self.expr = expr
        self.is_eq = is_eq
        self._hash = hash((expr, is_eq))

    def __init__(self, expr: LinExpr, is_eq: bool):
        # all state is set in __new__ (possibly served from the intern
        # table); nothing to do here
        pass

    def __reduce__(self):
        # route unpickling through __new__ so deserialized constraints
        # re-enter the intern table (plan-cache loads stay hash-consed);
        # _normalize is idempotent on an already-normalized expr
        return (Constraint, (self.expr, self.is_eq))

    # -- constructors --------------------------------------------------
    @staticmethod
    def eq(lhs: LinExpr | int | str, rhs: LinExpr | int | str = 0) -> "Constraint":
        """``lhs == rhs``"""
        return Constraint(E(lhs) - E(rhs), True)

    @staticmethod
    def ge(lhs: LinExpr | int | str, rhs: LinExpr | int | str = 0) -> "Constraint":
        """``lhs >= rhs``"""
        return Constraint(E(lhs) - E(rhs), False)

    @staticmethod
    def le(lhs: LinExpr | int | str, rhs: LinExpr | int | str = 0) -> "Constraint":
        """``lhs <= rhs``"""
        return Constraint(E(rhs) - E(lhs), False)

    # -- queries ---------------------------------------------------------
    def is_trivially_true(self) -> bool:
        e = self.expr
        if not e.is_constant():
            return False
        return e.constant == 0 if self.is_eq else e.constant >= 0

    def is_trivially_false(self) -> bool:
        e = self.expr
        if not e.is_constant():
            return False
        return e.constant != 0 if self.is_eq else e.constant < 0

    def vars(self) -> frozenset[str]:
        return self.expr.vars()

    def substitute(self, binding: Mapping[str, LinExpr | int]) -> "Constraint":
        return Constraint(self.expr.substitute(binding), self.is_eq)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.is_eq)

    def satisfied_by(self, binding: Mapping[str, int]) -> bool:
        v = self.expr.evaluate(binding)
        return v == 0 if self.is_eq else v >= 0

    def negated(self) -> "list[Constraint]":
        """Integer negation. ``e == 0`` negates to two disjuncts (callers get
        a list and build a union); ``e >= 0`` negates to ``-e - 1 >= 0``."""
        if self.is_eq:
            return [Constraint(self.expr - 1, False), Constraint(-self.expr - 1, False)]
        return [Constraint(-self.expr - 1, False)]

    def pretty(self, prefer: Sequence[str] = ()) -> str:
        """Human-oriented relational form: solve for one unit-coefficient
        variable (preferring *prefer* names, then lexicographic) and render
        ``v <= rest`` / ``v >= rest`` / ``v = rest`` instead of ``expr >= 0``.
        Falls back to the raw form when no variable has coefficient ±1."""
        cands = [v for v in self.expr.vars() if abs(self.expr.coeff(v)) == 1]
        if not cands:
            return str(self)
        ordered = [v for v in prefer if v in cands] + sorted(
            v for v in cands if v not in prefer
        )
        v = ordered[0]
        a = self.expr.coeff(v)
        # expr == a*v + r  with r = expr - a*v;  then  a*v (op) -r
        rest = (self.expr - LinExpr({v: a})) * (-a)
        if self.is_eq:
            op = "="
        else:
            # a*v + r >= 0  =>  v >= -r (a=1)  |  v <= r (a=-1)
            op = ">=" if a > 0 else "<="
        return f"{v} {op} {rest}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constraint)
            and self.is_eq == other.is_eq
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        op = "=" if self.is_eq else ">="
        return f"{self.expr} {op} 0"

    __repr__ = __str__


def _dedup(constraints: Iterable[Constraint]) -> list[Constraint]:
    """Remove duplicates and pairwise-dominated inequalities."""
    eqs: list[Constraint] = []
    # best (largest-constant ⇒ weakest? no: expr + c >= 0, larger c is weaker)
    # keep, per coefficient vector, the *tightest* (smallest constant).
    best: dict[tuple, int] = {}
    for c in constraints:
        if c.is_trivially_true():
            continue
        if c.is_eq:
            if c not in eqs:
                eqs.append(c)
            continue
        key = tuple(c.expr.coeffs.items())
        const = c.expr.constant
        if key not in best or const < best[key]:
            best[key] = const
    ineqs = [Constraint(LinExpr(dict(k), v), False) for k, v in best.items()]
    return eqs + ineqs


class BasicSet:
    """A conjunctive affine integer set with existential variables.

    ``dims`` is the ordered tuple of set dimensions; ``exists`` are
    existentially quantified auxiliary variables; every other name appearing
    in a constraint is a free symbolic parameter.
    """

    __slots__ = ("dims", "exists", "constraints", "exact")

    def __init__(
        self,
        dims: Sequence[str],
        constraints: Iterable[Constraint] = (),
        exists: Iterable[str] = (),
        exact: bool = True,
    ):
        self.dims: tuple[str, ...] = tuple(dims)
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"duplicate dims in {self.dims}")
        self.exists: frozenset[str] = frozenset(exists)
        if self.exists & set(self.dims):
            raise ValueError("existential variable collides with a dim")
        self.constraints: tuple[Constraint, ...] = tuple(_dedup(constraints))
        self.exact = exact

    # -- basic structure -------------------------------------------------
    def params(self) -> frozenset[str]:
        """Free symbolic parameters: variables that are neither dims nor exists."""
        used: set[str] = set()
        for c in self.constraints:
            used |= c.vars()
        return frozenset(used - set(self.dims) - self.exists)

    def with_constraints(self, extra: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.dims, list(self.constraints) + list(extra), self.exists, self.exact)

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        new_dims = tuple(mapping.get(d, d) for d in self.dims)
        return BasicSet(
            new_dims,
            [c.rename(mapping) for c in self.constraints],
            {mapping.get(e, e) for e in self.exists},
            self.exact,
        )

    def _fresh(self, base: str, taken: set[str]) -> str:
        i = 0
        while f"{base}'{i}" in taken:
            i += 1
        return f"{base}'{i}"

    def align_exists(self, avoid: set[str]) -> "BasicSet":
        """Rename existential variables so they avoid the given names."""
        clash = self.exists & avoid
        if not clash:
            return self
        taken = set(avoid) | self.exists | set(self.dims) | set(self.params())
        mapping = {}
        for e in clash:
            fresh = self._fresh(e, taken)
            mapping[e] = fresh
            taken.add(fresh)
        return BasicSet(
            self.dims,
            [c.rename(mapping) for c in self.constraints],
            {mapping.get(e, e) for e in self.exists},
            self.exact,
        )

    # -- algebra ---------------------------------------------------------
    def intersect(self, other: "BasicSet") -> "BasicSet":
        if self.dims != other.dims:
            raise ValueError(f"space mismatch: {self.dims} vs {other.dims}")
        o = other.align_exists(self.exists | set(self.dims) | self.params())
        return BasicSet(
            self.dims,
            list(self.constraints) + list(o.constraints),
            self.exists | o.exists,
            self.exact and o.exact,
        )

    def substitute(self, binding: Mapping[str, LinExpr | int]) -> "BasicSet":
        """Substitute *parameters* (or dims being fixed) by expressions.

        Any substituted dim is removed from the dim tuple.
        """
        new_dims = tuple(d for d in self.dims if d not in binding)
        return BasicSet(
            new_dims,
            [c.substitute(binding) for c in self.constraints],
            self.exists - set(binding),
            self.exact,
        )

    # -- Fourier-Motzkin ---------------------------------------------------
    def _eliminate_var(
        self, constraints: list[Constraint], var: str
    ) -> tuple[list[Constraint], bool]:
        """Eliminate *var* from a constraint list. Returns (result, exact)."""
        exact = True
        # 1. use an equality with unit coefficient if available (exact)
        for c in constraints:
            if c.is_eq:
                a = c.expr.coeff(var)
                if a in (1, -1):
                    # var = -(rest)/a
                    _, rest = c.expr.as_fraction_of(var)
                    repl = rest * (-1 if a == 1 else 1)
                    out = [k.substitute({var: repl}) for k in constraints if k is not c]
                    return _dedup(out), True
        # 2. equality with non-unit coefficient: scale-substitute (approximate:
        #    loses the divisibility condition a | rest)
        for c in constraints:
            if c.is_eq and c.expr.coeff(var) != 0:
                a = c.expr.coeff(var)
                _, rest = c.expr.as_fraction_of(var)
                # a*var + rest == 0  =>  var = -rest/a ; multiply others by |a|
                out = []
                for k in constraints:
                    if k is c:
                        continue
                    b = k.expr.coeff(var)
                    if b == 0:
                        out.append(k)
                    else:
                        _, krest = k.expr.as_fraction_of(var)
                        # |a| * k :  b*(-rest/a)*|a| + krest*|a|
                        sign = 1 if a > 0 else -1
                        newe = krest * abs(a) + rest * (-b * sign)
                        out.append(Constraint(newe, k.is_eq))
                return _dedup(out), False
        # 3. inequalities: FM with dark-shadow exactness check
        lowers: list[tuple[int, LinExpr]] = []  # a*var >= -rest  (a>0)
        uppers: list[tuple[int, LinExpr]] = []  # b*var <= rest   (b>0)
        rest_cons: list[Constraint] = []
        for c in constraints:
            a = c.expr.coeff(var)
            if a == 0:
                rest_cons.append(c)
            elif a > 0:
                _, rest = c.expr.as_fraction_of(var)
                lowers.append((a, rest))
            else:
                _, rest = c.expr.as_fraction_of(var)
                uppers.append((-a, rest))
        out = list(rest_cons)
        for (a, rl), (b, ru) in itertools.product(lowers, uppers):
            # a*var + rl >= 0  and  -b*var + ru >= 0
            # real shadow: a*ru + b*rl >= 0 ; exact iff a==1 or b==1
            out.append(Constraint(ru * a + rl * b, False))
            if a != 1 and b != 1:
                exact = False
        out = _dedup(out)
        if len(out) > _MAX_CONSTRAINTS:
            # keep equalities + the syntactically smallest inequalities
            eqs = [c for c in out if c.is_eq]
            iq = sorted(
                (c for c in out if not c.is_eq),
                key=lambda c: (len(c.expr.coeffs), sum(abs(v) for v in c.expr.coeffs.values())),
            )
            out = eqs + iq[:_MAX_CONSTRAINTS]
            exact = False
        return out, exact

    def project_out(self, names: Iterable[str]) -> "BasicSet":
        """Existentially project away the given dims / exists vars."""
        names = [n for n in names if n in self.dims or n in self.exists]
        cons = list(self.constraints)
        exact = self.exact
        for n in names:
            cons, ok = self._eliminate_var(cons, n)
            exact = exact and ok
        new_dims = tuple(d for d in self.dims if d not in names)
        return BasicSet(new_dims, cons, self.exists - set(names), exact)

    def eliminate_exists(self) -> "BasicSet":
        """Project away all existential variables (possibly approximate)."""
        if not self.exists:
            return self
        return self.project_out(list(self.exists))

    # -- emptiness / membership --------------------------------------------
    def is_empty(self) -> bool:
        """True iff the set is *provably* empty (rationally infeasible, which
        is sound over the integers).  "False" means "could not prove empty".

        Elimination order matters for integer precision: variables with a
        unit-coefficient equality are substituted first (exact), so that
        divisibility contradictions like ``{j = 0, 2i + j + 1 = 0}`` are
        found regardless of name order.

        Results are memoized by set value: structurally equal sets (same
        dims, exists, constraint set) share one Fourier-Motzkin run.
        """
        cached = _EMPTY_CACHE.get(self)
        if cached is not None:
            result, epoch = cached
            CACHE_STATS.empty_hits += 1
            if epoch != _EPOCH:
                CACHE_STATS.empty_cross_hits += 1
                _EMPTY_CACHE[self] = (result, _EPOCH)
            return result
        CACHE_STATS.empty_misses += 1
        quick = self._interval_empty()
        if quick is not None:
            # decided by per-variable rational intervals: charge like one
            # constraint op, not a full Fourier-Motzkin run
            CACHE_STATS.empty_fast += 1
            if _ACTIVE_BUDGET is not None:
                _ACTIVE_BUDGET.charge_op()
            result = quick
        else:
            if _ACTIVE_BUDGET is not None:
                _ACTIVE_BUDGET.charge_op(IsetBudget.EMPTY_WEIGHT)
            result = self._is_empty_uncached()
        if len(_EMPTY_CACHE) >= _EMPTY_MAX:
            _evict_oldest_half(_EMPTY_CACHE)
        _EMPTY_CACHE[self] = (result, _EPOCH)
        return result

    def _interval_empty(self) -> bool | None:
        """Emptiness by per-variable rational intervals, for sets whose
        constraints each involve at most one variable.

        On such systems Fourier-Motzkin (real shadow) reduces exactly to
        intersecting each variable's rational bounds, so this returns the
        same verdict as :meth:`_is_empty_uncached` without running
        elimination.  Returns ``None`` (undecided) as soon as a constraint
        couples two variables."""
        lo: dict[str, Fraction] = {}
        hi: dict[str, Fraction] = {}
        for c in self.constraints:
            if c.is_trivially_false():
                return True
            if c.is_trivially_true():
                continue
            vs = c.expr.vars()
            if len(vs) != 1:
                return None
            (v,) = vs
            a = c.expr.coeff(v)
            val = Fraction(-c.expr.constant, a)
            # a*v + r (>= or ==) 0  ->  v >= -r/a (a>0) | v <= -r/a (a<0)
            if c.is_eq or a > 0:
                if v not in lo or val > lo[v]:
                    lo[v] = val
            if c.is_eq or a < 0:
                if v not in hi or val < hi[v]:
                    hi[v] = val
        for v, lo_v in lo.items():
            if v in hi and lo_v > hi[v]:
                return True
        return False

    def _is_empty_uncached(self) -> bool:
        cons = list(self.constraints)
        for c in cons:
            if c.is_trivially_false():
                return True
        all_vars: set[str] = set(self.dims) | set(self.exists)
        for c in cons:
            all_vars |= c.vars()
        remaining = set(all_vars)
        while remaining:
            # prefer a variable with a unit-coefficient equality (exact sub)
            pick = None
            for c in cons:
                if c.is_eq:
                    for v in sorted(remaining):
                        if c.expr.coeff(v) in (1, -1):
                            pick = v
                            break
                if pick:
                    break
            if pick is None:
                pick = sorted(remaining)[0]
            remaining.discard(pick)
            cons, _ = self._eliminate_var(cons, pick)
            for c in cons:
                if c.is_trivially_false():
                    return True
        return any(c.is_trivially_false() for c in cons)

    def contains(self, point: Sequence[int], params: Mapping[str, int] | None = None) -> bool:
        """Membership test for a concrete point under concrete parameters.

        If the set has existential variables, feasibility of the residual
        system in the existentials is checked by bounded search.
        """
        if len(point) != len(self.dims):
            raise ValueError(f"point arity {len(point)} != set arity {len(self.dims)}")
        binding: dict[str, int] = dict(zip(self.dims, point))
        if params:
            binding.update(params)
        residual: list[Constraint] = []
        for c in self.constraints:
            e = c.expr.evaluate_partial(binding)
            cc = Constraint(e, c.is_eq)
            if cc.is_trivially_false():
                return False
            if not cc.is_trivially_true():
                residual.append(cc)
        if not residual:
            return True
        free = set()
        for c in residual:
            free |= c.vars()
        missing = free - self.exists
        if missing:
            raise KeyError(f"unbound parameters in contains(): {sorted(missing)}")
        return _exists_feasible(residual, sorted(free))

    # -- enumeration --------------------------------------------------------
    def bounds_of(
        self, var: str, binding: Mapping[str, int]
    ) -> tuple[int, int] | None:
        """Concrete [lb, ub] of one variable after substituting *binding* and
        projecting away every other dim/exists var.  None if unbounded."""
        sub = self.substitute({k: LinExpr.const(v) for k, v in binding.items()})
        others = [d for d in sub.dims if d != var] + list(sub.exists)
        proj = sub.project_out(others)
        lb: int | None = None
        ub: int | None = None
        for c in proj.constraints:
            a = c.expr.coeff(var)
            if a == 0:
                if c.is_trivially_false():
                    return (1, 0)  # empty range
                continue
            _, rest = c.expr.as_fraction_of(var)
            if not rest.is_constant():
                continue  # still-symbolic bound: ignore (caller handles)
            r = rest.constant
            if c.is_eq:
                if r % a != 0:
                    return (1, 0)
                v = -r // a
                lb = v if lb is None else max(lb, v)
                ub = v if ub is None else min(ub, v)
            elif a > 0:  # a*var + r >= 0 -> var >= ceil(-r/a)
                v = ceil(-r / a)
                lb = v if lb is None else max(lb, v)
            else:  # a<0: var <= floor(r/(-a))
                v = floor(r / (-a))
                ub = v if ub is None else min(ub, v)
        if lb is None or ub is None:
            return None
        return (lb, ub)

    def enumerate_points(
        self, params: Mapping[str, int] | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Yield every integer point (requires all parameters bound)."""
        params = dict(params or {})
        sub = self.substitute({k: LinExpr.const(v) for k, v in params.items()})
        leftover = sub.params()
        if leftover:
            raise KeyError(f"unbound parameters in enumerate_points(): {sorted(leftover)}")
        ranges = _product_ranges(sub, self.dims)
        if ranges == "empty":
            CACHE_STATS.enum_fast += 1
            return
        if ranges is not None:
            CACHE_STATS.enum_fast += 1
            yield from itertools.product(*ranges)
            return
        CACHE_STATS.enum_scan += 1
        yield from _scan(sub, self.dims, {})

    def sample(self, params: Mapping[str, int] | None = None) -> tuple[int, ...] | None:
        """Return one point of the set under the binding, or None if empty."""
        for p in self.enumerate_points(params):
            return p
        return None

    def count(self, params: Mapping[str, int] | None = None) -> int:
        return sum(1 for _ in self.enumerate_points(params))

    def pretty(self) -> str:
        """Readable set-builder form with per-variable relational
        constraints (``{[a$0,a$1] : a$0 >= 1 and a$0 <= 16 ...}``)."""
        body = " and ".join(
            c.pretty(prefer=self.dims) for c in self.constraints
        ) or "true"
        ex = f"exists {','.join(sorted(self.exists))} : " if self.exists else ""
        mark = "" if self.exact else " (approx)"
        return f"{{[{','.join(self.dims)}] : {ex}{body}}}{mark}"

    # -- dunder ----------------------------------------------------------
    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        ex = f" exists {','.join(sorted(self.exists))} :" if self.exists else ""
        mark = "" if self.exact else " (approx)"
        return f"{{[{','.join(self.dims)}] :{ex} {body}}}{mark}"

    __repr__ = __str__

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BasicSet)
            and self.dims == other.dims
            and self.exists == other.exists
            and set(self.constraints) == set(other.constraints)
        )

    def __hash__(self) -> int:
        return hash((self.dims, self.exists, frozenset(self.constraints)))


def _product_ranges(
    bs: BasicSet, dims: Sequence[str]
) -> "list[range] | str | None":
    """Per-dim iteration ranges when *bs* decomposes into independent
    single-variable constraints (the common case for bound communication /
    iteration sets), letting :meth:`BasicSet.enumerate_points` emit the
    cross product directly instead of running one Fourier-Motzkin
    projection per lattice prefix in :func:`_scan`.

    Returns ``None`` when any constraint couples two variables (caller
    falls back to the scan), the string ``"empty"`` when the set provably
    has no points, or the list of ``range`` objects in *dims* order.
    Faithful to the scan's observable behavior, including failure order:
    a rational contradiction in *any* variable silences the enumeration
    (the scan's very first ``bounds_of`` sees the projected contradiction
    as a false constant), while an unbounded dim raises ``ValueError``
    unless an earlier dim in tuple order already had an empty range.
    """
    int_lo: dict[str, int] = {}
    int_hi: dict[str, int] = {}
    rat_lo: dict[str, Fraction] = {}
    rat_hi: dict[str, Fraction] = {}
    gap: set[str] = set()  # non-divisible equality: integer-empty
    dim_set = set(dims)
    for c in bs.constraints:
        if c.is_trivially_false():
            return "empty"
        if c.is_trivially_true():
            continue
        vs = c.expr.vars()
        if len(vs) != 1:
            return None
        (v,) = vs
        if v not in dim_set and v not in bs.exists:
            return None
        a = c.expr.coeff(v)
        r = c.expr.constant
        rval = Fraction(-r, a)
        if c.is_eq or a > 0:
            if v not in rat_lo or rval > rat_lo[v]:
                rat_lo[v] = rval
        if c.is_eq or a < 0:
            if v not in rat_hi or rval < rat_hi[v]:
                rat_hi[v] = rval
        if c.is_eq:
            # same divisibility test / floor division as bounds_of
            if r % a != 0:
                gap.add(v)
                continue
            val = -r // a
            if v not in int_lo or val > int_lo[v]:
                int_lo[v] = val
            if v not in int_hi or val < int_hi[v]:
                int_hi[v] = val
        elif a > 0:  # a*v + r >= 0 -> v >= ceil(-r/a)
            val = -(r // a)
            if v not in int_lo or val > int_lo[v]:
                int_lo[v] = val
        else:  # v <= floor(r/(-a))
            val = r // (-a)
            if v not in int_hi or val < int_hi[v]:
                int_hi[v] = val
    for v, lo_v in rat_lo.items():
        if v in rat_hi and lo_v > rat_hi[v]:
            return "empty"
    out: list[range] = []
    for d in dims:
        if d in gap:
            return "empty"
        lo = int_lo.get(d)
        hi = int_hi.get(d)
        if lo is not None and hi is not None and hi < lo:
            return "empty"
        if lo is None or hi is None:
            raise ValueError(
                f"dimension {d!r} is unbounded; cannot enumerate; set: {bs.pretty()}"
            )
        out.append(range(lo, hi + 1))
    # existential variables: the scan's leaf check runs _exists_feasible on
    # the residual system, which for independent single-variable constraints
    # reduces to each existential having a satisfiable interval (with the
    # same conservative accepts for unbounded / very wide ranges).
    for e in bs.exists:
        if e in gap:
            return "empty"  # non-divisible equality: bounded search finds nothing
        lo = int_lo.get(e)
        hi = int_hi.get(e)
        if lo is None or hi is None:
            continue  # unbounded existential: conservative accept
        if hi - lo > 10000:
            continue  # too wide to search: conservative accept
        if hi < lo:
            return "empty"
    return out


def _scan(bs: BasicSet, dims: Sequence[str], fixed: dict[str, int]) -> Iterator[tuple[int, ...]]:
    """Recursive lattice scan of a fully-parametrized basic set."""
    remaining = [d for d in dims if d not in fixed]
    if not remaining:
        pt = tuple(fixed[d] for d in dims)
        residual = []
        ok = True
        for c in bs.constraints:
            e = c.expr.evaluate_partial(fixed)
            cc = Constraint(e, c.is_eq)
            if cc.is_trivially_false():
                ok = False
                break
            if not cc.is_trivially_true():
                residual.append(cc)
        if ok and residual:
            free = set()
            for c in residual:
                free |= c.vars()
            ok = _exists_feasible(residual, sorted(free))
        if ok:
            yield pt
        return
    var = remaining[0]
    rng = bs.bounds_of(var, fixed)
    if rng is None:
        raise ValueError(
            f"dimension {var!r} is unbounded; cannot enumerate; set: {bs.pretty()}"
        )
    lo, hi = rng
    for v in range(lo, hi + 1):
        yield from _scan(bs, dims, {**fixed, var: v})


def _exists_feasible(constraints: list[Constraint], free: list[str]) -> bool:
    """Bounded search for an integer assignment of existential variables."""
    if not free:
        return all(c.is_trivially_true() for c in constraints)
    helper = BasicSet(tuple(free), constraints)
    if helper.is_empty():
        return False
    var = free[0]
    rng = helper.bounds_of(var, {})
    if rng is None:
        # unbounded existential: fall back to rational feasibility, which
        # `is_empty` already failed to refute — accept (sound for the cyclic
        # stride sets this is used for, where strides have unit coefficient).
        return True
    lo, hi = rng
    if hi - lo > 10000:
        return True  # too wide to search; conservative accept
    for v in range(lo, hi + 1):
        residual = []
        ok = True
        for c in constraints:
            e = c.expr.evaluate_partial({var: v})
            cc = Constraint(e, c.is_eq)
            if cc.is_trivially_false():
                ok = False
                break
            if not cc.is_trivially_true():
                residual.append(cc)
        if ok and _exists_feasible(residual, free[1:]):
            return True
    return False
