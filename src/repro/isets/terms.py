"""Affine linear expressions over named integer variables.

A :class:`LinExpr` is an immutable mapping ``{var_name: coeff}`` plus an
integer constant.  Variables are identified purely by name; whether a name is
a tuple dimension, an existential variable, or a free symbolic parameter is
decided by the set that contains the expression, not by the expression
itself.  All coefficients are Python ints (arbitrary precision), so there is
no overflow anywhere in the framework.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Term:
    """A single ``coeff * var`` term (used when pretty-printing)."""

    coeff: int
    var: str

    def __str__(self) -> str:
        if self.coeff == 1:
            return self.var
        if self.coeff == -1:
            return f"-{self.var}"
        return f"{self.coeff}{self.var}"


_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_'$.]*$")


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + const``.

    Immutable and hashable.  Supports ``+``, ``-``, scalar ``*``,
    substitution of variables by other LinExprs, and evaluation under a
    concrete integer binding.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        items = {}
        if coeffs:
            for name, c in coeffs.items():
                if not isinstance(c, int):
                    raise TypeError(f"coefficient for {name!r} must be int, got {type(c).__name__}")
                if not _NAME_RE.match(name):
                    raise ValueError(f"invalid variable name {name!r}")
                if c != 0:
                    items[name] = c
        if not isinstance(const, int):
            raise TypeError(f"constant must be int, got {type(const).__name__}")
        object.__setattr__(self, "_coeffs", dict(sorted(items.items())))
        object.__setattr__(self, "_const", const)
        object.__setattr__(self, "_hash", hash((tuple(self._coeffs.items()), const)))

    # -- constructors -------------------------------------------------
    @staticmethod
    def var(name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return LinExpr({name: 1})

    @staticmethod
    def const(value: int) -> "LinExpr":
        """A constant expression."""
        return LinExpr({}, value)

    @staticmethod
    def of(value: "LinExpr | int | str") -> "LinExpr":
        """Coerce an int (constant), str (variable) or LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr.const(value)
        if isinstance(value, str):
            return LinExpr.var(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to LinExpr")

    # -- accessors -----------------------------------------------------
    @property
    def coeffs(self) -> Mapping[str, int]:
        return self._coeffs

    @property
    def constant(self) -> int:
        return self._const

    def coeff(self, name: str) -> int:
        return self._coeffs.get(name, 0)

    def vars(self) -> frozenset[str]:
        return frozenset(self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def content(self) -> int:
        """GCD of the variable coefficients (0 for a constant expression)."""
        g = 0
        for c in self._coeffs.values():
            g = gcd(g, abs(c))
        return g

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "LinExpr | int") -> "LinExpr":
        other = LinExpr.of(other)
        coeffs = dict(self._coeffs)
        for name, c in other._coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + c
        return LinExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self._coeffs.items()}, -self._const)

    def __sub__(self, other: "LinExpr | int") -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other: "LinExpr | int") -> "LinExpr":
        return LinExpr.of(other) + (-self)

    def __mul__(self, k: int) -> "LinExpr":
        if not isinstance(k, int):
            raise TypeError("LinExpr can only be multiplied by an int")
        if k == 0:
            return LinExpr()
        return LinExpr({name: c * k for name, c in self._coeffs.items()}, self._const * k)

    __rmul__ = __mul__

    def substitute(self, binding: Mapping[str, "LinExpr | int"]) -> "LinExpr":
        """Replace each variable in *binding* by the given expression."""
        out = LinExpr.const(self._const)
        for name, c in self._coeffs.items():
            if name in binding:
                out = out + LinExpr.of(binding[name]) * c
            else:
                out = out + LinExpr({name: c})
        return out

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables; names not in *mapping* are unchanged."""
        coeffs: dict[str, int] = {}
        for name, c in self._coeffs.items():
            new = mapping.get(name, name)
            coeffs[new] = coeffs.get(new, 0) + c
        return LinExpr(coeffs, self._const)

    def evaluate(self, binding: Mapping[str, int]) -> int:
        """Evaluate under a complete integer binding of the variables."""
        total = self._const
        for name, c in self._coeffs.items():
            try:
                total += c * binding[name]
            except KeyError:
                raise KeyError(f"no binding for variable {name!r}") from None
        return total

    def evaluate_partial(self, binding: Mapping[str, int]) -> "LinExpr":
        """Substitute any bound variables, leaving others symbolic."""
        return self.substitute({k: LinExpr.const(v) for k, v in binding.items() if k in self._coeffs})

    def as_fraction_of(self, name: str) -> tuple[int, "LinExpr"]:
        """Split into ``(coeff_of_name, rest)`` with ``self = coeff*name + rest``."""
        c = self.coeff(name)
        rest = LinExpr({k: v for k, v in self._coeffs.items() if k != name}, self._const)
        return c, rest

    def solve_for(self, name: str) -> "tuple[Fraction, LinExpr]":
        """If ``self == 0``, return ``(1/c, -rest)`` such that ``name = -rest / c``."""
        c, rest = self.as_fraction_of(name)
        if c == 0:
            raise ValueError(f"{name!r} does not appear in {self}")
        return Fraction(1, c), -rest

    # -- dunder --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinExpr)
            and self._coeffs == other._coeffs
            and self._const == other._const
        )

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._coeffs) or self._const != 0

    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self._coeffs.items():
            term = str(Term(c, name))
            if parts and not term.startswith("-"):
                parts.append("+" + term)
            else:
                parts.append(term)
        if self._const or not parts:
            s = str(self._const)
            if parts and self._const > 0:
                s = "+" + s
            parts.append(s)
        return "".join(parts)

    def __repr__(self) -> str:
        return f"LinExpr({self})"


def E(value: "LinExpr | int | str") -> LinExpr:
    """Shorthand coercion used throughout the compiler."""
    return LinExpr.of(value)


def total_gcd(values: Iterable[int]) -> int:
    """GCD of a collection of integers (0 for an empty collection)."""
    g = 0
    for v in values:
        g = gcd(g, abs(v))
    return g
