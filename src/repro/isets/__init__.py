"""Symbolic integer set framework (a mini-Omega).

The dHPF compiler expresses its data-parallel analyses — iteration sets,
ownership sets, communication sets, computation partitions — as symbolic
integer tuple sets and solves optimization problems as sequences of set
equations (Adve & Mellor-Crummey, PLDI'98).  This package provides the same
abstraction: affine integer sets over named tuple dimensions with free
symbolic parameters, supporting intersection, union, difference, projection
(Fourier-Motzkin with dark-shadow integer reasoning), affine image/preimage,
subset and emptiness tests, and concrete enumeration / loop-bound extraction
for code generation.

Public API:

- :class:`LinExpr` — affine expression over named variables.
- :class:`Constraint` — ``expr == 0`` or ``expr >= 0``.
- :class:`BasicSet` — conjunction of constraints over an ordered dim tuple,
  with optional existentially quantified variables.
- :class:`ISet` — finite union of BasicSets in the same space.
- :class:`AffineMap` — affine relation between tuple spaces (CP translation).
- helpers: :func:`box`, :func:`universe`, :func:`empty`.
"""

from .terms import LinExpr, Term
from .core import (
    BasicSet,
    BudgetExceeded,
    Constraint,
    IsetBudget,
    active_budget,
    cache_stats,
    current_epoch,
    iset_budget,
    new_epoch,
    pool_info,
    reset_caches,
)
from .iset import ISet, box, universe, empty
from .profile import CompileProfile, active_profile, phase, profiled
from .relation import AffineMap

__all__ = [
    "LinExpr",
    "Term",
    "Constraint",
    "BasicSet",
    "ISet",
    "AffineMap",
    "box",
    "universe",
    "empty",
    "cache_stats",
    "reset_caches",
    "IsetBudget",
    "BudgetExceeded",
    "iset_budget",
    "active_budget",
    "pool_info",
    "new_epoch",
    "current_epoch",
    "CompileProfile",
    "profiled",
    "phase",
    "active_profile",
]
