"""Unions of basic sets (:class:`ISet`) and convenience constructors.

An :class:`ISet` is a finite union of :class:`BasicSet` disjuncts over the
same dimension tuple.  This is the workhorse type for ownership sets,
iteration sets, computation partitions and communication sets in the
compiler: intersection distributes over the disjuncts, difference negates
constraints disjunct-by-disjunct, and subset testing reduces to emptiness of
a difference.
"""

from __future__ import annotations

import itertools
from math import ceil, floor
from typing import Iterable, Iterator, Mapping, Sequence

from .core import (
    _SUBSUME_CACHE,
    _SUBSUME_MAX,
    _evict_oldest_half,
    CACHE_STATS,
    BasicSet,
    Constraint,
    active_budget,
)
from .terms import LinExpr, E

#: inclusion–exclusion over box disjuncts is exponential in the disjunct
#: count; beyond this many boxes :meth:`ISet.cardinality` falls back to
#: point enumeration.
_MAX_IE_BOXES = 10

# Difference blows up exponentially in the number of constraints of the
# subtrahend; cap the number of disjuncts an ISet may carry.
_MAX_DISJUNCTS = 64


class ISet:
    """A finite union of conjunctive affine integer sets."""

    __slots__ = ("dims", "parts")

    def __init__(self, dims: Sequence[str], parts: Iterable[BasicSet] = ()):
        self.dims: tuple[str, ...] = tuple(dims)
        kept: list[BasicSet] = []
        seen: set[BasicSet] = set()
        for p in parts:
            if p.dims != self.dims:
                raise ValueError(f"disjunct space {p.dims} != {self.dims}")
            if p in seen:
                continue
            if any(c.is_trivially_false() for c in p.constraints):
                continue
            seen.add(p)
            kept.append(p)
        self.parts: tuple[BasicSet, ...] = tuple(kept)
        budget = active_budget()
        if budget is not None:
            budget.charge_disjuncts(len(self.parts))

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_basic(bs: BasicSet) -> "ISet":
        return ISet(bs.dims, [bs])

    @staticmethod
    def from_constraints(
        dims: Sequence[str],
        constraints: Iterable[Constraint],
        exists: Iterable[str] = (),
    ) -> "ISet":
        return ISet(dims, [BasicSet(dims, constraints, exists)])

    # -- structure ---------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.dims)

    def is_exact(self) -> bool:
        return all(p.exact for p in self.parts)

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.params()
        return out

    def rename_dims(self, mapping: Mapping[str, str]) -> "ISet":
        return ISet(
            tuple(mapping.get(d, d) for d in self.dims),
            [p.rename_dims(mapping) for p in self.parts],
        )

    def with_dims(self, dims: Sequence[str]) -> "ISet":
        """Reinterpret in a new same-arity space (positional renaming)."""
        if len(dims) != len(self.dims):
            raise ValueError("arity mismatch")
        return self.rename_dims(dict(zip(self.dims, dims)))

    # -- algebra -------------------------------------------------------------
    def union(self, other: "ISet") -> "ISet":
        other = self._coerce(other)
        parts = _coalesce(list(self.parts) + list(other.parts))
        if len(parts) > _MAX_DISJUNCTS:
            parts = parts[:_MAX_DISJUNCTS]
        return ISet(self.dims, parts)

    def intersect(self, other: "ISet") -> "ISet":
        other = self._coerce(other)
        parts = [
            a.intersect(b)
            for a, b in itertools.product(self.parts, other.parts)
        ]
        parts = [p for p in parts if not p.is_empty()]
        return ISet(self.dims, parts)

    def subtract(self, other: "ISet") -> "ISet":
        """Integer set difference ``self \\ other``.

        If a subtrahend disjunct has existential variables, its quantified
        negation is not representable here; we conservatively *keep* points
        (over-approximate the difference), which is sound for communication
        generation (never drops needed data).
        """
        other = self._coerce(other)
        result = list(self.parts)
        for b in other.parts:
            if b.exists:
                b = b.eliminate_exists()
                if b.exists or not b.exact:
                    continue  # cannot negate: over-approximate
            new_result: list[BasicSet] = []
            for a in result:
                new_result.extend(_subtract_basic(a, b))
            result = _coalesce([p for p in new_result if not p.is_empty()])
            if len(result) > _MAX_DISJUNCTS:
                result = result[:_MAX_DISJUNCTS]
        return ISet(self.dims, result)

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.parts)

    def is_subset(self, other: "ISet") -> bool:
        """Provable containment: ``self - other`` is provably empty AND the
        difference computation was exact. Sound for optimization decisions."""
        other = self._coerce(other)
        diff = self.subtract(other)
        return diff.is_empty() and self.is_exact() and other.is_exact()

    def project_out(self, names: Iterable[str]) -> "ISet":
        names = list(names)
        return ISet(
            tuple(d for d in self.dims if d not in names),
            [p.project_out(names) for p in self.parts],
        )

    def substitute(self, binding: Mapping[str, LinExpr | int]) -> "ISet":
        dims = tuple(d for d in self.dims if d not in binding)
        return ISet(dims, [p.substitute(binding) for p in self.parts])

    def bind(self, params: Mapping[str, int]) -> "ISet":
        """Substitute concrete parameter values (dims unchanged)."""
        return self.substitute({k: LinExpr.const(v) for k, v in params.items() if k not in self.dims})

    def close_params(self, names: Iterable[str] | None = None) -> "ISet":
        """Existentially quantify free parameters (all of them by default).

        Used by cost estimation when a set still mentions outer-loop
        variables: "non-local for *some* outer iteration"."""
        names = set(names) if names is not None else set(self.params())
        if not names:
            return self
        parts = []
        for p in self.parts:
            close = names - set(p.dims)
            parts.append(BasicSet(p.dims, p.constraints, p.exists | close, p.exact))
        return ISet(self.dims, parts)

    # -- concrete queries ------------------------------------------------------
    def contains(self, point: Sequence[int], params: Mapping[str, int] | None = None) -> bool:
        return any(p.contains(point, params) for p in self.parts)

    def enumerate_points(self, params: Mapping[str, int] | None = None) -> Iterator[tuple[int, ...]]:
        seen: set[tuple[int, ...]] = set()
        for p in self.parts:
            for pt in p.enumerate_points(params):
                if pt not in seen:
                    seen.add(pt)
                    yield pt

    def points(self, params: Mapping[str, int] | None = None) -> set[tuple[int, ...]]:
        return set(self.enumerate_points(params))

    def count(self, params: Mapping[str, int] | None = None) -> int:
        return len(self.points(params))

    def _metered_count(self, params: Mapping[str, int] | None = None) -> int:
        """Enumeration fallback for :meth:`cardinality`, charged against the
        active :class:`~repro.isets.core.IsetBudget` (one op per 128 points)
        so a pathological disjunct pile trips ``W-BUDGET`` instead of
        enumerating unmetered."""
        budget = active_budget()
        if budget is None:
            return self.count(params)
        n = 0
        for n, _ in enumerate(self.enumerate_points(params), 1):
            if n % 128 == 0:
                budget.charge_op()
        return n

    def cardinality(self, params: Mapping[str, int] | None = None) -> int:
        """Exact number of integer points, computed in closed form when the
        set is a union of axis-aligned boxes (per-disjunct extent products
        combined by inclusion–exclusion), falling back to point enumeration
        otherwise.  Always equals :meth:`count`; the static cost analyzer
        uses this so per-rank communication volumes do not require
        enumerating every element of every halo."""
        boxes = []
        for p in self.parts:
            ext = _box_extents(p, params)
            if ext is None:
                return self._metered_count(params)
            if ext == "empty":
                continue
            boxes.append(ext)
        if len(boxes) > _MAX_IE_BOXES:
            return self._metered_count(params)
        # inclusion–exclusion over every non-empty subset of the boxes
        total = 0
        for k in range(1, len(boxes) + 1):
            for combo in itertools.combinations(boxes, k):
                n = 1
                for axis in zip(*combo):
                    lo = max(a for a, _ in axis)
                    hi = min(b for _, b in axis)
                    if hi < lo:
                        n = 0
                        break
                    n *= hi - lo + 1
                total += n if k % 2 else -n
        return total

    def pretty(self, max_parts: int = 4) -> str:
        """Readable rendering for diagnostics: relational constraint forms,
        at most *max_parts* disjuncts (the rest summarized by count)."""
        if not self.parts:
            return f"{{[{','.join(self.dims)}] : false}}"
        shown = [p.pretty() for p in self.parts[:max_parts]]
        extra = len(self.parts) - max_parts
        if extra > 0:
            shown.append(f"... (+{extra} more disjuncts)")
        return " union ".join(shown)

    # -- dunder ------------------------------------------------------------
    def _coerce(self, other: "ISet | BasicSet") -> "ISet":
        if isinstance(other, BasicSet):
            other = ISet.from_basic(other)
        if other.dims != self.dims:
            if len(other.dims) == len(self.dims):
                other = other.with_dims(self.dims)
            else:
                raise ValueError(f"space mismatch: {self.dims} vs {other.dims}")
        return other

    def __or__(self, other: "ISet") -> "ISet":
        return self.union(other)

    def __and__(self, other: "ISet") -> "ISet":
        return self.intersect(other)

    def __sub__(self, other: "ISet") -> "ISet":
        return self.subtract(other)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __str__(self) -> str:
        if not self.parts:
            return f"{{[{','.join(self.dims)}] : false}}"
        return " union ".join(str(p) for p in self.parts)

    __repr__ = __str__

    def __eq__(self, other: object) -> bool:
        """Semantic equality is undecidable cheaply; this is syntactic."""
        return (
            isinstance(other, ISet)
            and self.dims == other.dims
            and set(self.parts) == set(other.parts)
        )

    def __hash__(self) -> int:
        return hash((self.dims, frozenset(self.parts)))


def _box_extents(bs: BasicSet, params: Mapping[str, int] | None):
    """Per-dim inclusive ``(lo, hi)`` ranges when *bs* is an axis-aligned
    box under *params* — no existential variables, every constraint
    involving exactly one dim with a concrete bound.  Returns the string
    ``"empty"`` when the set is provably empty, and ``None`` when it is
    not recognizably a box (the caller falls back to enumeration)."""
    if params:
        bs = bs.substitute({k: LinExpr.const(v) for k, v in params.items()})
    if bs.exists or not bs.dims:
        return None
    lo: dict[str, int | None] = dict.fromkeys(bs.dims)
    hi: dict[str, int | None] = dict.fromkeys(bs.dims)
    for c in bs.constraints:
        vs = c.vars()
        if not vs:
            if c.is_trivially_false():
                return "empty"
            continue
        if len(vs) > 1:
            return None  # cross-dim coupling: not a box
        (v,) = vs
        if v not in bs.dims:
            return None  # unbound parameter
        a = c.expr.coeff(v)
        _, rest = c.expr.as_fraction_of(v)
        if not rest.is_constant():
            return None
        r = rest.constant
        if c.is_eq:
            if r % a != 0:
                return "empty"
            val = -r // a
            lo[v] = val if lo[v] is None else max(lo[v], val)
            hi[v] = val if hi[v] is None else min(hi[v], val)
        elif a > 0:  # a*v + r >= 0  ->  v >= ceil(-r/a)
            val = ceil(-r / a)
            lo[v] = val if lo[v] is None else max(lo[v], val)
        else:  # v <= floor(r/(-a))
            val = floor(r / (-a))
            hi[v] = val if hi[v] is None else min(hi[v], val)
    out = []
    for d in bs.dims:
        d_lo, d_hi = lo[d], hi[d]
        if d_lo is None or d_hi is None:
            return None  # unbounded in this dim
        if d_hi < d_lo:
            return "empty"
        out.append((d_lo, d_hi))
    return out


def _subtract_basic(a: BasicSet, b: BasicSet) -> list[BasicSet]:
    """a \\ b as a union: for each constraint c of b, a ∧ ¬c (integer negation)."""
    out: list[BasicSet] = []
    kept: list[Constraint] = []
    for c in b.constraints:
        for neg in c.negated():
            cand = a.with_constraints(kept + [neg])
            out.append(cand)
        # subsequent pieces assume this constraint holds
        kept.append(c)
    return out


def _subsumed_by(p: BasicSet, q: BasicSet) -> bool:
    """Provable containment ``p ⊆ q`` by cheap structural evidence only:
    either ``q``'s constraint set is a subset of ``p``'s (every extra
    constraint shrinks a conjunction), or both are concrete axis-aligned
    boxes with ``q``'s ranges covering ``p``'s.  Verdicts are memoized in
    the cross-kernel pool (the same disjunct pairs recur across the
    incremental unions of coalescing and across kernels sharing subscript
    patterns)."""
    key = (p, q)
    cached = _SUBSUME_CACHE.get(key)
    if cached is not None:
        CACHE_STATS.subsume_hits += 1
        return cached
    CACHE_STATS.subsume_misses += 1
    if set(q.constraints) <= set(p.constraints) and q.exists == p.exists:
        verdict = True
    else:
        pb = _box_extents(p, None)
        if pb == "empty":
            verdict = True  # the empty set is contained in anything
        else:
            qb = _box_extents(q, None)
            verdict = (
                isinstance(pb, list)
                and isinstance(qb, list)
                and all(ql <= pl and ph <= qh for (pl, ph), (ql, qh) in zip(pb, qb))
            )
    if len(_SUBSUME_CACHE) >= _SUBSUME_MAX:
        _evict_oldest_half(_SUBSUME_CACHE)
    _SUBSUME_CACHE[key] = verdict
    return verdict


def _coalesce(parts: list[BasicSet]) -> list[BasicSet]:
    """Disjunct normalization: drop disjuncts provably contained in an
    earlier one, so unions stop growing superlinearly.  Keeps the first
    occurrence (survivor order is load-bearing for downstream covers)."""
    out: list[BasicSet] = []
    for p in parts:
        if not any(_subsumed_by(p, q) for q in out):
            out.append(p)
    return out


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------

def universe(dims: Sequence[str]) -> ISet:
    """The unconstrained set over the given dims."""
    return ISet(dims, [BasicSet(dims)])


def empty(dims: Sequence[str]) -> ISet:
    """The empty set over the given dims."""
    return ISet(dims, [])


def box(dims: Sequence[str], bounds: Sequence[tuple[LinExpr | int | str, LinExpr | int | str]]) -> ISet:
    """``{[d0..dn] : lb_i <= d_i <= ub_i}`` with symbolic or concrete bounds."""
    if len(dims) != len(bounds):
        raise ValueError("dims/bounds arity mismatch")
    cons: list[Constraint] = []
    for d, (lo, hi) in zip(dims, bounds):
        cons.append(Constraint.ge(E(d), E(lo)))
        cons.append(Constraint.le(E(d), E(hi)))
    return ISet.from_constraints(dims, cons)
