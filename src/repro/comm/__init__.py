"""Communication analysis: non-local data sets → placed, vectorized,
coalesced communication events.

Given a loop nest with CPs selected, :class:`CommAnalyzer` derives, for the
representative processor:

- one *read* event per non-local read reference (data fetched from owners),
- one *write-back* event per non-owner write (dHPF's communication model
  requires values to return to the owner),

each placed at the outermost loop level that dependences allow (placement
= message vectorization: everything inside the placement level is
aggregated into one message per outer iteration), coalesced by (array,
placement), and filtered by §7's availability analysis.

The SPMD benchmark schedules in :mod:`repro.parallel` are cross-checked
against these events' message counts and volumes in the test suite.
"""

from .events import CommEvent, Placement
from .analyzer import CommAnalyzer, CommPlan

__all__ = ["CommEvent", "Placement", "CommAnalyzer", "CommPlan"]
