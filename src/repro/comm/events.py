"""Communication event model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..ir.expr import ArrayRef
from ..ir.stmt import Assign, DoLoop
from ..isets import ISet


@dataclass(frozen=True)
class Placement:
    """Where a communication event is placed.

    ``level`` 0 means hoisted before the whole nest (fully vectorized —
    one message per partner for the entire nest).  ``level`` k > 0 means
    inside the k-th loop of the nest (pipelined: one message per iteration
    of loops 1..k).
    """

    level: int

    @property
    def hoisted(self) -> bool:
        return self.level == 0

    @property
    def pipelined(self) -> bool:
        return self.level > 0

    def __str__(self) -> str:
        return "pre-nest" if self.hoisted else f"inside-L{self.level}"


@dataclass
class CommEvent:
    """One communication requirement of the representative processor."""

    array: str
    kind: str  # 'read' | 'writeback'
    stmt: Assign
    ref: Optional[ArrayRef]
    data: ISet  # symbolic non-local set over a$ dims (p$ params free)
    placement: Placement
    #: loops enclosing the statement, outermost first (for trip counts)
    loops: tuple[DoLoop, ...] = ()
    eliminated_by_availability: bool = False
    coalesced_into: Optional[int] = None  # index of the surviving event

    # -- concrete metrics -------------------------------------------------------
    def volume(self, binding: Mapping[str, int]) -> int:
        """Elements moved per nest execution (per processor)."""
        try:
            return self.data.bind(dict(binding)).close_params().cardinality()
        except ValueError:
            return 0

    def byte_volume(self, binding: Mapping[str, int], word_bytes: int = 8) -> int:
        """Payload bytes moved per nest execution (per processor)."""
        return self.volume(binding) * word_bytes

    def message_count(self, binding: Mapping[str, int], trip_of) -> int:
        """Messages per nest execution: product of trip counts of the loops
        outside the placement level (>= 1).  ``trip_of`` may return ``None``
        for a loop it cannot evaluate; such loops contribute a factor of 1,
        making the result a lower bound (see CommPlan.unknown_trip_loops)."""
        if self.placement.hoisted:
            return 1
        n = 1
        for loop in self.loops[: self.placement.level]:
            trip = trip_of(loop, binding)
            n *= max(trip, 1) if trip is not None else 1
        return n

    def __repr__(self) -> str:
        flags = []
        if self.eliminated_by_availability:
            flags.append("avail-elim")
        if self.coalesced_into is not None:
            flags.append(f"coalesced->{self.coalesced_into}")
        f = f" [{','.join(flags)}]" if flags else ""
        return f"<Comm {self.kind} {self.array} @{self.placement} s{self.stmt.sid}{f}>"
