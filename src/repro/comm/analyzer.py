"""Deriving, placing, coalescing and filtering communication events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..analysis.availability import AvailabilityAnalyzer
from ..analysis.dependence import DependenceAnalyzer
from ..cp.model import cp_iteration_set
from ..cp.nest import NestInfo, access_data_set
from ..cp.select import StatementCP
from ..distrib.layout import DistributionContext
from ..ir.expr import ArrayRef, to_affine
from ..ir.stmt import Assign, DoLoop
from ..ir.visit import collect_array_refs, walk_stmts
from .events import CommEvent, Placement


@dataclass
class CommPlan:
    """All communication of one loop nest, plus summary helpers."""

    events: list[CommEvent]
    nest_loops: tuple[DoLoop, ...]
    #: arrays suppressed from this plan (NEW / LOCALIZE exclusions) — the
    #: static verifier must prove their reads are produced locally instead
    excluded_arrays: frozenset = frozenset()

    def live_events(self) -> list[CommEvent]:
        return [
            e
            for e in self.events
            if not e.eliminated_by_availability and e.coalesced_into is None
        ]

    @staticmethod
    def _trip(loop: DoLoop, binding: Mapping[str, int]) -> Optional[int]:
        """Trip count of one loop under *binding*, or an explicit ``None``
        when a bound is non-affine or references an unbound name.  Callers
        treat ``None`` as "at least one" and must surface the uncertainty
        (the static checker reports it as an info finding) rather than
        silently assuming a single iteration."""
        lo, hi = to_affine(loop.lo), to_affine(loop.hi)
        if lo is None or hi is None:
            return None
        try:
            return max(hi.evaluate(dict(binding)) - lo.evaluate(dict(binding)) + 1, 0)
        except KeyError:
            return None

    def unknown_trip_loops(self, binding: Mapping[str, int]) -> list[DoLoop]:
        """Loops whose trip count the analyzer cannot evaluate — message
        counts involving them are lower bounds, not exact."""
        out: list[DoLoop] = []
        seen: set[int] = set()
        for e in self.live_events():
            for loop in e.loops[: e.placement.level]:
                if loop.sid in seen:
                    continue
                seen.add(loop.sid)
                if self._trip(loop, binding) is None:
                    out.append(loop)
        return out

    def total_volume(self, binding: Mapping[str, int]) -> int:
        return sum(e.volume(binding) for e in self.live_events())

    def total_bytes(self, binding: Mapping[str, int], word_bytes: int = 8) -> int:
        """Payload bytes of the plan per nest execution (per processor)."""
        return self.total_volume(binding) * word_bytes

    def total_messages(self, binding: Mapping[str, int]) -> int:
        return sum(
            e.message_count(binding, self._trip) for e in self.live_events()
        )

    def pipelined_events(self) -> list[CommEvent]:
        return [e for e in self.live_events() if e.placement.pipelined]

    def summary(self, binding: Mapping[str, int]) -> dict:
        return {
            "events": len(self.events),
            "live": len(self.live_events()),
            "eliminated": sum(1 for e in self.events if e.eliminated_by_availability),
            "coalesced": sum(1 for e in self.events if e.coalesced_into is not None),
            "volume": self.total_volume(binding),
            "messages": self.total_messages(binding),
            "pipelined": len(self.pipelined_events()),
        }


class CommAnalyzer:
    """Communication analysis for one loop nest with selected CPs."""

    def __init__(
        self,
        root: DoLoop,
        cps: Mapping[int, StatementCP],
        ctx: DistributionContext,
        params: Mapping[str, int] | None = None,
        use_availability: bool = True,
        coalesce: bool = True,
        exclude_arrays: "tuple[str, ...] | list[str] | set[str]" = (),
    ):
        self.root = root
        self.cps = cps
        self.ctx = ctx
        self.params = dict(params or {})
        self.use_availability = use_availability
        self.coalesce = coalesce
        #: arrays needing no communication in this nest: NEW (privatizable —
        #: every consumed value is computed locally, §4.1) and LOCALIZE'd
        #: (partial replication guarantees local copies and suppresses
        #: finalization write-backs, §4.2)
        self.exclude = {a.lower() for a in exclude_arrays}
        self.nest = NestInfo(root, self.params)
        self.deps = DependenceAnalyzer(root, self.params).dependences()

    # -- placement ----------------------------------------------------------------
    def _read_placement(self, stmt: Assign, ref: ArrayRef) -> Placement:
        """Outermost legal position for the read's communication: inside the
        deepest loop carrying a flow dependence into this reference (the
        producing iteration must complete first); hoisted pre-nest if the
        values are nest-invariant (no carried flow into the read)."""
        level = 0
        for d in self.deps:
            if d.kind == "flow" and d.dst.sid == stmt.sid and d.dst_ref is ref:
                level = max(level, d.level)
        return Placement(level)

    def _write_placement(self, stmt: Assign) -> Placement:
        """Write-backs must reach the owner before a later iteration (of the
        carrying loop) consumes the value on a third processor."""
        level = 0
        for d in self.deps:
            if d.kind == "flow" and d.src.sid == stmt.sid and d.src_ref is stmt.lhs:
                level = max(level, d.level)
        return Placement(level)

    # -- event derivation ------------------------------------------------------------
    def analyze(self) -> CommPlan:
        events: list[CommEvent] = []
        avail_elim: set = set()
        if self.use_availability:
            avail = AvailabilityAnalyzer(self.root, self.cps, self.ctx, self.params)
            avail_elim = avail.eliminated_refs()

        for stmt in walk_stmts([self.root]):
            if not isinstance(stmt, Assign):
                continue
            scp = self.cps.get(stmt.sid)
            if scp is None:
                continue
            dims = self.nest.dims_of(stmt)
            bounds = self.nest.bounds_of(stmt)
            if bounds is None:
                continue
            loops = tuple(self.nest.loops_of(stmt))
            iters = cp_iteration_set(
                scp.cp, dims, bounds.bind(self.params), self.ctx
            )
            # reads
            for ref in collect_array_refs(stmt.rhs):
                if ref.name.lower() in self.exclude:
                    continue
                layout = self.ctx.layout(ref.name)
                if layout is None:
                    continue
                data = access_data_set(ref, iters, dims)
                if data is None:
                    continue
                nl = data.subtract(layout.ownership())
                if nl.is_empty():
                    continue
                ev = CommEvent(
                    ref.name.lower(),
                    "read",
                    stmt,
                    ref,
                    nl,
                    self._read_placement(stmt, ref),
                    loops,
                    eliminated_by_availability=(stmt.sid, ref) in avail_elim,
                )
                events.append(ev)
            # write-back
            if isinstance(stmt.lhs, ArrayRef) and stmt.lhs.name.lower() not in self.exclude:
                layout = self.ctx.layout(stmt.lhs.name)
                if layout is not None:
                    data = access_data_set(stmt.lhs, iters, dims)
                    if data is not None:
                        nl = data.subtract(layout.ownership())
                        if not nl.is_empty():
                            events.append(
                                CommEvent(
                                    stmt.lhs.name.lower(),
                                    "writeback",
                                    stmt,
                                    stmt.lhs,
                                    nl,
                                    self._write_placement(stmt),
                                    loops,
                                )
                            )
        if self.coalesce:
            self._coalesce(events)
        root_loops = tuple(self.nest.loops_of(next(walk_stmts([self.root]))))
        return CommPlan(events, root_loops, frozenset(self.exclude))

    # -- coalescing --------------------------------------------------------------
    def _coalesce(self, events: list[CommEvent]) -> None:
        """Message coalescing: events for the same array, kind and placement
        merge into one message (the survivor's data set becomes the union)."""
        by_key: dict[tuple, int] = {}
        for idx, e in enumerate(events):
            if e.eliminated_by_availability:
                continue
            key = (e.array, e.kind, e.placement.level)
            if key in by_key:
                survivor = events[by_key[key]]
                survivor.data = survivor.data.union(e.data)
                e.coalesced_into = by_key[key]
            else:
                by_key[key] = idx
