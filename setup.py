"""Setuptools shim.

The evaluation environment has no network and no `wheel` package, so
PEP 517 editable installs (`bdist_wheel`) fail.  This setup.py enables the
legacy editable path: `pip install -e . --no-build-isolation --no-use-pep517`,
and plain `pip install -e .` falls back to it on older pips.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "dhpf-py: reproduction of the Rice dHPF HPF compilation techniques "
        "(SC'98) - frontend, integer-set framework, computation partitioning, "
        "SPMD codegen, simulated MPI runtime, NAS SP/BT evaluation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
